#include "litho/aerial.hpp"

#include <stdexcept>

namespace camo::litho {

geo::Raster rasterize_clip(const LithoConfig& cfg, std::span<const geo::Polygon> mask,
                           std::span<const geo::Polygon> srafs, int clip_size_nm) {
    const int off = cfg.clip_frame_offset_nm(clip_size_nm);
    geo::Raster raster(cfg.grid, cfg.pixel_nm);

    auto add_translated = [&raster, off](const geo::Polygon& p) {
        std::vector<geo::Point> verts = p.vertices();
        for (geo::Point& v : verts) {
            v.x += off;
            v.y += off;
        }
        raster.add_polygon(geo::Polygon(std::move(verts)));
    };

    for (const geo::Polygon& p : mask) add_translated(p);
    for (const geo::Polygon& p : srafs) add_translated(p);
    raster.clamp01();
    return raster;
}

std::vector<Complex> mask_spectrum(const geo::Raster& mask) {
    const int n = mask.n();
    std::vector<Complex> buf(static_cast<std::size_t>(n) * n);
    const auto data = mask.data();
    for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = Complex(data[i], 0.0F);
    fft2d_forward(buf, n);
    return buf;
}

KernelApplicator::KernelApplicator(KernelSet kernels, int grid)
    : kernels_(std::move(kernels)), grid_(grid) {
    if (!is_pow2(grid_)) throw std::invalid_argument("grid must be a power of two");
    pos_.reserve(kernels_.support.size());
    row_nonzero_.assign(static_cast<std::size_t>(grid_), 0);
    for (const FreqIndex& f : kernels_.support) {
        const int row = ((f.ky % grid_) + grid_) % grid_;
        const int col = ((f.kx % grid_) + grid_) % grid_;
        pos_.push_back(row * grid_ + col);
        row_nonzero_[static_cast<std::size_t>(row)] = 1;
    }
}

geo::Raster KernelApplicator::apply(std::span<const Complex> spectrum, double pixel_nm) const {
    const int n = grid_;
    if (static_cast<int>(spectrum.size()) != n * n) {
        throw std::invalid_argument("spectrum size mismatch");
    }

    geo::Raster intensity(n, pixel_nm);
    std::vector<Complex> field(static_cast<std::size_t>(n) * n);

    // Gather the support-sampled spectrum once; the per-kernel multiply then
    // runs over contiguous arrays (vectorizable complex multiply) instead of
    // strided lattice loads. Values are identical to the direct form.
    std::vector<Complex> support_vals(pos_.size());
    std::vector<Complex> prod(pos_.size());
    for (std::size_t i = 0; i < pos_.size(); ++i) {
        support_vals[i] = spectrum[static_cast<std::size_t>(pos_[i])];
    }

    for (int k = 0; k < kernels_.count(); ++k) {
        const auto& coeff = kernels_.coeffs[static_cast<std::size_t>(k)];
        for (std::size_t i = 0; i < pos_.size(); ++i) prod[i] = coeff[i] * support_vals[i];

        std::fill(field.begin(), field.end(), Complex{});
        for (std::size_t i = 0; i < pos_.size(); ++i) {
            field[static_cast<std::size_t>(pos_[i])] = prod[i];
        }
        fft2d_inverse_rowsparse(field, n, row_nonzero_);

        const auto lambda = static_cast<float>(kernels_.eigenvalues[static_cast<std::size_t>(k)]);
        auto out = intensity.data();
        for (std::size_t i = 0; i < field.size(); ++i) out[i] += lambda * std::norm(field[i]);
    }
    return intensity;
}

}  // namespace camo::litho
