// Process-wide, thread-safe SOCS kernel sharing.
//
// Building a kernel set (TCC assembly + eigendecomposition + threshold
// calibration) takes seconds at production grid sizes, and the result is
// immutable. The registry guarantees build-once/read-many semantics: the
// first acquire_kernels() call for a configuration builds (or loads from the
// disk cache) the kernels while concurrent callers for the same
// configuration block on the in-flight build; every later call returns the
// shared immutable applicators without locking beyond a map lookup. This is
// what lets the batch runtime construct one cheap LithoSim per worker.
#pragma once

#include <memory>

#include "litho/aerial.hpp"
#include "litho/config.hpp"

namespace camo::litho {

/// Immutable, shareable kernel state for one lithography configuration.
struct SharedKernels {
    std::shared_ptr<const KernelApplicator> nominal;
    std::shared_ptr<const KernelApplicator> defocus;
    double threshold = 0.0;  ///< calibrated (or configured) resist threshold
};

/// Acquire the shared kernels for `cfg`, building them exactly once per
/// process per physics configuration. Thread-safe. Falls back to the disk
/// cache before computing; persists freshly computed kernels when
/// cfg.cache_dir is set. Build failures propagate to every waiting caller
/// and the entry is dropped so a later call can retry.
SharedKernels acquire_kernels(const LithoConfig& cfg);

/// Acquire the shared kernel applicator for one focus plane of `cfg`. The
/// two standard planes (0 and cfg.defocus_nm, within 1e-6 nm) resolve to the
/// acquire_kernels() sets without building anything; every other defocus
/// builds a SOCS kernel set once per process, with the kernel count
/// interpolated between kernels_nominal and kernels_defocus by
/// |defocus| / cfg.defocus_nm (clamped; defocused TCCs concentrate energy in
/// fewer kernels, so intermediate planes need an intermediate count).
/// Extra planes are registry-resident only — they are not written to the
/// disk cache. Thread-safe with the same build-once semantics as
/// acquire_kernels.
std::shared_ptr<const KernelApplicator> acquire_focus_applicator(const LithoConfig& cfg,
                                                                 double defocus_nm);

/// Kernel count used by acquire_focus_applicator for an extra focus plane.
int interpolated_kernel_count(const LithoConfig& cfg, double defocus_nm);

/// Drop every in-memory entry (test hook). Outstanding SharedKernels remain
/// valid: entries are reference-counted, not owned by the registry alone.
void clear_kernel_registry();

}  // namespace camo::litho
