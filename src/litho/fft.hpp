// Iterative radix-2 complex FFT (1D and 2D, power-of-two sizes).
//
// Conventions: forward() applies no scaling; inverse() scales by 1/N (1D)
// or 1/N^2 (2D), so inverse(forward(x)) == x.
//
// fft2d_inverse_rowsparse() exploits that SOCS kernels occupy a small
// frequency-domain support: the row pass is skipped for all-zero rows,
// roughly halving the cost of each kernel convolution.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace camo::litho {

using Complex = std::complex<float>;

/// True iff n is a power of two (and > 0).
bool is_pow2(int n);

/// In-place forward FFT of length data.size() (power of two).
void fft_forward(std::span<Complex> data);

/// In-place inverse FFT (includes the 1/N scale).
void fft_inverse(std::span<Complex> data);

/// In-place forward 2D FFT of an n-by-n row-major grid.
void fft2d_forward(std::span<Complex> grid, int n);

/// In-place inverse 2D FFT (includes the 1/N^2 scale).
void fft2d_inverse(std::span<Complex> grid, int n);

/// Inverse 2D FFT that skips the row pass on all-zero rows; `row_nonzero`
/// flags which rows contain any nonzero entry (nonzero byte = occupied).
/// Result is identical to fft2d_inverse().
void fft2d_inverse_rowsparse(std::span<Complex> grid, int n,
                             std::span<const std::uint8_t> row_nonzero);

}  // namespace camo::litho
