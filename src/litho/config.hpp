// Optical and numerical configuration of the lithography simulator.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

namespace camo::litho {

/// Two focus values denote the same physical plane when they differ by less
/// than this (used to resolve window-spec planes onto the standard kernel
/// sets; far tighter than the registry's 1e-3 nm focus-key quantization).
inline constexpr double kFocusMatchTolNm = 1e-6;

/// Immersion ArF scanner model with annular illumination and a constant
/// threshold resist. Process window corners are (dose_max, best focus) for
/// the outermost printed contour and (dose_min, defocus_nm) for the
/// innermost one, following the ICCAD-2013 contest convention.
struct LithoConfig {
    double wavelength_nm = 193.0;
    double na = 1.35;
    double sigma_in = 0.6;   ///< annular source inner partial coherence
    double sigma_out = 0.9;  ///< annular source outer partial coherence

    int grid = 512;          ///< raster size (power of two)
    double pixel_nm = 4.0;   ///< raster pixel pitch

    int kernels_nominal = 8;  ///< SOCS kernels kept at best focus
    int kernels_defocus = 6;  ///< SOCS kernels kept at the defocus corner
    double defocus_nm = 25.0;

    double dose_min = 0.98;
    double dose_max = 1.02;

    /// Resist threshold relative to open-frame intensity. Zero requests
    /// auto-calibration: the threshold is set to the aerial intensity at the
    /// edge midpoint of a large isolated square, so large features print
    /// true to size and sub-resolution features under-print, which is the
    /// regime OPC operates in.
    double threshold = 0.0;

    /// Calibration feature size used when threshold == 0.
    int calibration_feature_nm = 600;

    /// Dose-to-size tuning: the calibrated threshold is this fraction of the
    /// measured large-feature edge intensity. 0.6 makes a 70 nm via print
    /// close to target with the paper's +3 nm initial bias while wide wires
    /// print within a few nm of target — the regime the OPC engines operate
    /// in (analogous to the ICCAD-2013 contest's fixed 0.225 threshold).
    double calibration_fraction = 0.6;

    /// Half-range of the EPE line search along the measure-point normal; EPE
    /// is clamped to +/- this value when no contour crossing is found.
    double epe_range_nm = 20.0;

    /// evaluate_incremental() falls back to a full rebuild when more than
    /// this fraction of the segments moved since the previous call (the
    /// sparse delta-DFT stops paying off). Not part of the physics hash.
    double incremental_fallback_fraction = 0.3;

    /// Directory for the SOCS kernel cache ("" disables caching).
    std::string cache_dir = "data";

    [[nodiscard]] double clip_span_nm() const { return grid * pixel_nm; }

    /// Offset that centres a clip of `clip_size_nm` in the simulation frame.
    /// The one copy of this arithmetic: LithoSim, the incremental evaluator
    /// and the process-window sweep all offset through it, which the
    /// bit-identical nominal-corner guarantee depends on.
    [[nodiscard]] int clip_frame_offset_nm(int clip_size_nm) const {
        return static_cast<int>((clip_span_nm() - clip_size_nm) / 2.0);
    }

    /// Stable hash of every physics- and grid-affecting field, used to key
    /// the kernel cache.
    [[nodiscard]] std::uint64_t physics_hash() const;
};

/// Conservative optical interaction radius in nanometers: beyond roughly
/// 1.5 lambda/NA (a few Airy rings of the partially coherent PSF) a
/// feature's influence on the aerial image is negligible for the SOCS model
/// used here. The tile sharder (layout/shard.hpp) requires its halo to be at
/// least this wide so every seam segment keeps its full optical context;
/// shrinking the halo below it is rejected rather than silently producing
/// seam artifacts.
[[nodiscard]] inline int interaction_radius_nm(const LithoConfig& cfg) {
    return static_cast<int>(std::ceil(1.5 * cfg.wavelength_nm / cfg.na));
}

}  // namespace camo::litho
