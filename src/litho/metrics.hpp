// Lithography quality metrics: edge placement error and process-variation
// band.
#pragma once

#include <span>
#include <vector>

#include "geometry/layout.hpp"
#include "geometry/raster.hpp"
#include "geometry/segment.hpp"

namespace camo::litho {

/// Signed edge placement error at one measure point: the displacement from
/// the target edge to the printed contour along the outward normal, found by
/// a line search on the aerial image against the resist threshold.
/// Positive = contour outside the target (over-exposed); negative = inside.
/// Clamped to +/- range_nm when no contour crossing exists in range (e.g. a
/// feature that fails to print at all).
double measure_epe(const geo::Raster& aerial, double threshold, geo::FPoint pos,
                   geo::FPoint normal, double range_nm);

/// Process-variation band area (nm^2): pixels printed at the outer corner
/// (dose_max, nominal focus) but not at the inner corner (dose_min,
/// defocus). A pixel prints at dose d when I * d >= threshold.
double pv_band_nm2(const geo::Raster& aerial_nominal, const geo::Raster& aerial_defocus,
                   double threshold, double dose_min, double dose_max);

/// Full per-clip metrics produced by one lithography evaluation.
struct SimMetrics {
    std::vector<double> epe;          ///< signed EPE per *measured* point
    std::vector<double> epe_segment;  ///< signed EPE at every segment centre
    double sum_abs_epe = 0.0;         ///< sum of |EPE| over measured points
    double pvband_nm2 = 0.0;
};

/// Assemble per-clip metrics from a pair of aerial images: EPE at every
/// segment centre (shifted into the simulation frame by `clip_offset_nm`)
/// plus the PV band. Shared by the full and incremental evaluation paths so
/// both produce metrics through identical arithmetic.
SimMetrics compute_sim_metrics(const geo::SegmentedLayout& layout, const geo::Raster& nominal,
                               const geo::Raster& defocus, double threshold,
                               double clip_offset_nm, double epe_range_nm, double dose_min,
                               double dose_max);

}  // namespace camo::litho
