// Lithography quality metrics: edge placement error and process-variation
// band.
#pragma once

#include <span>
#include <vector>

#include "geometry/layout.hpp"
#include "geometry/raster.hpp"
#include "geometry/segment.hpp"

namespace camo::litho {

/// Relative epsilon of the printed-pixel predicate. A pixel whose intensity
/// lands within this fraction *below* threshold / dose still counts as
/// printed, so the full and incremental evaluation paths — which compute the
/// same aerial image through different float arithmetic — agree on every
/// pixel whose exact intensity sits on the threshold (the tie case that used
/// to flip between paths). The epsilon only moves the tie point; contour
/// gradients at the resist edge are steep enough that the shifted boundary
/// crosses at most a sub-pixel sliver of the image.
inline constexpr double kPrintedEpsRel = 1e-4;

/// The one printed-pixel predicate: a pixel with aerial intensity I prints at
/// relative dose d when I * d >= threshold * (1 - kPrintedEpsRel). Shared by
/// LithoSim::printed, pv_band_nm2 and the process-window sweep so every
/// consumer of "does this pixel print" answers through identical arithmetic.
[[nodiscard]] inline bool pixel_prints(double intensity, double dose, double threshold) {
    return intensity * dose >= threshold * (1.0 - kPrintedEpsRel);
}

/// Signed edge placement error at one measure point: the displacement from
/// the target edge to the printed contour along the outward normal, found by
/// a line search on the aerial image against the resist threshold.
/// Positive = contour outside the target (over-exposed); negative = inside.
/// Clamped to +/- range_nm when no contour crossing exists in range (e.g. a
/// feature that fails to print at all).
double measure_epe(const geo::Raster& aerial, double threshold, geo::FPoint pos,
                   geo::FPoint normal, double range_nm);

/// Two-corner process-variation band area (nm^2): pixels printed at the
/// outer corner (dose_max, nominal focus) but not at the inner corner
/// (dose_min, defocus), per pixel_prints(). This approximates the band from
/// just two of the window's corners; ProcessWindowSweep computes the exact
/// band over a full dose x focus grid.
double pv_band_nm2(const geo::Raster& aerial_nominal, const geo::Raster& aerial_defocus,
                   double threshold, double dose_min, double dose_max);

/// Full per-clip metrics produced by one lithography evaluation.
struct SimMetrics {
    std::vector<double> epe;          ///< signed EPE per *measured* point
    std::vector<double> epe_segment;  ///< signed EPE at every segment centre
    double sum_abs_epe = 0.0;         ///< sum of |EPE| over measured points
    double pvband_nm2 = 0.0;
};

/// EPE profile of one aerial image against an effective threshold: EPE at
/// every segment centre (shifted into the simulation frame by
/// `clip_offset_nm`), the measured-point subset and sum |EPE|. pvband_nm2 is
/// left 0 — callers that have a window of images attach their own band.
/// Shared by compute_sim_metrics and the process-window sweep so a window's
/// nominal corner reproduces evaluate()'s EPE bit for bit.
SimMetrics compute_epe_profile(const geo::SegmentedLayout& layout, const geo::Raster& aerial,
                               double threshold, double clip_offset_nm, double epe_range_nm);

/// Assemble per-clip metrics from a pair of aerial images: EPE at every
/// segment centre (shifted into the simulation frame by `clip_offset_nm`)
/// plus the PV band. Shared by the full and incremental evaluation paths so
/// both produce metrics through identical arithmetic.
SimMetrics compute_sim_metrics(const geo::SegmentedLayout& layout, const geo::Raster& nominal,
                               const geo::Raster& defocus, double threshold,
                               double clip_offset_nm, double epe_range_nm, double dose_min,
                               double dose_max);

}  // namespace camo::litho
