// LithoSim: the facade every OPC engine talks to.
//
// Construction acquires (builds once per process, or loads from the disk
// cache) the SOCS kernels for the nominal and defocus conditions and the
// auto-calibrated resist threshold via the shared kernel registry. One
// evaluate() call rasterizes the mask implied by per-segment offsets, images
// it at both focus conditions, and returns EPE per measure point / segment
// plus the PV band — exactly the quantities the paper's reward (Eq. 3) and
// result tables consume.
//
// Thread-safety contract: every const method touches only immutable shared
// kernel state plus an atomic call counter, so one LithoSim may be used from
// many threads concurrently. evaluate_incremental() is the exception: it
// mutates a per-instance cache and must not be called on one instance from
// two threads — the batch runtime gives each worker its own (cheap) copy, so
// per-worker caches and evaluation counts stay contention-free.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "geometry/layout.hpp"
#include "geometry/raster.hpp"
#include "litho/aerial.hpp"
#include "litho/config.hpp"
#include "litho/metrics.hpp"
#include "litho/process_window.hpp"

namespace camo::litho {

class IncrementalEvaluator;

class LithoSim {
public:
    explicit LithoSim(LithoConfig cfg);

    /// Copies share the immutable kernel applicators (no rebuild, no disk
    /// I/O); only the evaluation counter is per-instance, starting at zero.
    LithoSim(const LithoSim& other);
    LithoSim& operator=(const LithoSim&) = delete;

    [[nodiscard]] const LithoConfig& config() const { return cfg_; }
    [[nodiscard]] double threshold() const { return threshold_; }

    /// Offset that centres a clip of `clip_size_nm` in the simulation frame.
    [[nodiscard]] int clip_offset_nm(int clip_size_nm) const;

    /// Rasterize mask polygons (clip coordinates) onto the simulation grid.
    [[nodiscard]] geo::Raster rasterize(std::span<const geo::Polygon> mask,
                                        std::span<const geo::Polygon> srafs,
                                        int clip_size_nm) const;

    /// Aerial images (intensity in open-frame units) of a rasterized mask.
    [[nodiscard]] geo::Raster aerial_nominal(const geo::Raster& mask) const;
    [[nodiscard]] geo::Raster aerial_defocus(const geo::Raster& mask) const;

    /// Full evaluation of a segmented layout under per-segment offsets.
    [[nodiscard]] SimMetrics evaluate(const geo::SegmentedLayout& layout,
                                      std::span<const int> offsets) const;

    /// Incremental evaluation without a dirty set: always performs a full
    /// evaluation and (re)primes the per-instance cache for `layout`, so a
    /// job's results never depend on what this simulator evaluated before.
    /// Call this for the first evaluation of a clip, then the dirty-set
    /// overload inside the optimization loop.
    [[nodiscard]] SimMetrics evaluate_incremental(const geo::SegmentedLayout& layout,
                                                  std::span<const int> offsets);

    /// Incremental evaluation: `dirty` lists the segment indices acted on
    /// since the previous call on the same layout. The hint is advisory —
    /// the evaluator cross-checks it against its cached offsets and works
    /// from what actually changed, so a stale or incomplete hint costs
    /// accuracy nothing. Re-rasterizes only the changed polygons and updates
    /// the cached support spectrum with a sparse delta-DFT; falls back to a
    /// full evaluation when the cache does not match this layout or too many
    /// segments moved (cfg.incremental_fallback_fraction). Metrics match
    /// evaluate() within the tolerances documented in litho/incremental.hpp.
    /// Not thread-safe on one instance.
    [[nodiscard]] SimMetrics evaluate_incremental(const geo::SegmentedLayout& layout,
                                                  std::span<const int> offsets,
                                                  std::span<const int> dirty);

    /// Multi-corner process-window evaluation through the dense (exact)
    /// path: one rasterization + one forward FFT serve every corner, one
    /// aerial image per focus plane serves every dose at that focus. The
    /// (dose 1.0, best focus) corner is bit-identical to evaluate(). Const
    /// and thread-safe; repeated sweeps with one spec should hold a
    /// ProcessWindowSweep instead (this convenience wrapper re-resolves the
    /// per-focus applicators from the registry on every call — cheap, but
    /// not free).
    [[nodiscard]] WindowMetrics evaluate_window(const geo::SegmentedLayout& layout,
                                                std::span<const int> offsets,
                                                const WindowSpec& spec) const;

    /// Window evaluation riding the incremental cache: refreshes the cached
    /// raster + support spectrum exactly like evaluate_incremental (sparse
    /// delta-DFT for small moves, outright reuse for none), then images
    /// every corner from the cached spectrum — no per-corner rasterization
    /// or forward FFT. Matches evaluate_window within the incremental
    /// tolerances of litho/incremental.hpp. Not thread-safe on one instance.
    [[nodiscard]] WindowMetrics evaluate_window_incremental(const geo::SegmentedLayout& layout,
                                                            std::span<const int> offsets,
                                                            const WindowSpec& spec);

    /// Window evaluation that always (re)primes the per-instance cache with
    /// a full rebuild — the window counterpart of the no-dirty
    /// evaluate_incremental overload. Window-objective engines call this for
    /// the first evaluation of a clip, then evaluate_window_incremental
    /// inside the loop, so a job's window metrics never depend on what this
    /// simulator evaluated before. Not thread-safe on one instance.
    [[nodiscard]] WindowMetrics evaluate_window_prime(const geo::SegmentedLayout& layout,
                                                      std::span<const int> offsets,
                                                      const WindowSpec& spec);

    /// Binary printed image at a dose, per the shared epsilon-stable
    /// pixel_prints predicate (litho/metrics.hpp).
    [[nodiscard]] geo::Raster printed(const geo::Raster& aerial, double dose = 1.0) const;

    /// Number of lithography evaluations performed (for runtime accounting).
    [[nodiscard]] long long evaluate_count() const {
        return evaluate_count_.load(std::memory_order_relaxed);
    }

    /// evaluate_incremental() calls served by the sparse delta path vs. by a
    /// full rebuild (cache miss, large dirty set, or the no-dirty overload).
    [[nodiscard]] long long incremental_hit_count() const;
    [[nodiscard]] long long incremental_full_count() const;

    /// Nominal-focus SOCS kernels (used by the ILT engine's adjoint).
    [[nodiscard]] const KernelSet& nominal_kernels() const { return nominal_->kernels(); }
    [[nodiscard]] const KernelSet& defocus_kernels() const { return defocus_->kernels(); }

    ~LithoSim();

private:
    LithoConfig cfg_;
    double threshold_ = 0.0;
    std::shared_ptr<const KernelApplicator> nominal_;
    std::shared_ptr<const KernelApplicator> defocus_;
    mutable std::atomic<long long> evaluate_count_{0};
    std::unique_ptr<IncrementalEvaluator> incremental_;  ///< lazily built, never copied
};

}  // namespace camo::litho
