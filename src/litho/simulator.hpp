// LithoSim: the facade every OPC engine talks to.
//
// Construction acquires (builds once per process, or loads from the disk
// cache) the SOCS kernels for the nominal and defocus conditions and the
// auto-calibrated resist threshold via the shared kernel registry. One
// evaluate() call rasterizes the mask implied by per-segment offsets, images
// it at both focus conditions, and returns EPE per measure point / segment
// plus the PV band — exactly the quantities the paper's reward (Eq. 3) and
// result tables consume.
//
// Thread-safety contract: every method except construction is const and
// touches only immutable shared kernel state plus an atomic call counter, so
// one LithoSim may be used from many threads concurrently. The batch runtime
// still gives each worker its own (cheap) copy so per-worker evaluation
// counts stay contention-free.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "geometry/layout.hpp"
#include "geometry/raster.hpp"
#include "litho/aerial.hpp"
#include "litho/config.hpp"
#include "litho/metrics.hpp"

namespace camo::litho {

class LithoSim {
public:
    explicit LithoSim(LithoConfig cfg);

    /// Copies share the immutable kernel applicators (no rebuild, no disk
    /// I/O); only the evaluation counter is per-instance, starting at zero.
    LithoSim(const LithoSim& other);
    LithoSim& operator=(const LithoSim&) = delete;

    [[nodiscard]] const LithoConfig& config() const { return cfg_; }
    [[nodiscard]] double threshold() const { return threshold_; }

    /// Offset that centres a clip of `clip_size_nm` in the simulation frame.
    [[nodiscard]] int clip_offset_nm(int clip_size_nm) const;

    /// Rasterize mask polygons (clip coordinates) onto the simulation grid.
    [[nodiscard]] geo::Raster rasterize(std::span<const geo::Polygon> mask,
                                        std::span<const geo::Polygon> srafs,
                                        int clip_size_nm) const;

    /// Aerial images (intensity in open-frame units) of a rasterized mask.
    [[nodiscard]] geo::Raster aerial_nominal(const geo::Raster& mask) const;
    [[nodiscard]] geo::Raster aerial_defocus(const geo::Raster& mask) const;

    /// Full evaluation of a segmented layout under per-segment offsets.
    [[nodiscard]] SimMetrics evaluate(const geo::SegmentedLayout& layout,
                                      std::span<const int> offsets) const;

    /// Binary printed image at a dose (pixels with I * dose >= threshold).
    [[nodiscard]] geo::Raster printed(const geo::Raster& aerial, double dose = 1.0) const;

    /// Number of lithography evaluations performed (for runtime accounting).
    [[nodiscard]] long long evaluate_count() const {
        return evaluate_count_.load(std::memory_order_relaxed);
    }

    /// Nominal-focus SOCS kernels (used by the ILT engine's adjoint).
    [[nodiscard]] const KernelSet& nominal_kernels() const { return nominal_->kernels(); }

private:
    LithoConfig cfg_;
    double threshold_ = 0.0;
    std::shared_ptr<const KernelApplicator> nominal_;
    std::shared_ptr<const KernelApplicator> defocus_;
    mutable std::atomic<long long> evaluate_count_{0};
};

}  // namespace camo::litho
