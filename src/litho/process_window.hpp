// Multi-corner process-window evaluation.
//
// The paper's robustness claims (Eq. 3 reward, PV band columns of the result
// tables) are statements about a dose x focus window, but a plain evaluate()
// call images only the two standard corners. ProcessWindowSweep evaluates a
// segmented layout at an arbitrary dose x focus grid in one call:
//
//   * The mask is rasterized ONCE and forward-FFT'd ONCE; every corner reads
//     the same spectrum.
//   * One aerial image is computed per focus plane (dose is a pure threshold
//     scale, so all doses at a focus share its aerial). Per-focus kernel
//     applicators come from the kernel registry: the two standard planes
//     reuse the acquire_kernels() sets, extra planes are built once per
//     process with an interpolated kernel count.
//   * Per-corner printed images use the shared epsilon-stable pixel_prints
//     predicate, per-corner EPE the shared compute_epe_profile — so the
//     (dose 1.0, best focus) corner reproduces LithoSim::evaluate bit for
//     bit, and the exact PV band is consistent with LithoSim::printed.
//
// The exact PV band is the area between the union and the intersection of
// the printed images over all corners. The legacy two-corner approximation
// (pv_band_nm2) is also reported when the window contains both standard
// focus planes; the exact band is always a pixelwise superset of it.
//
// Thread-safety: ProcessWindowSweep::evaluate is const and touches only
// immutable shared kernel state — one sweep may serve many threads. The
// incremental variant (LithoSim::evaluate_window_incremental) rides the
// per-instance IncrementalEvaluator cache and is NOT thread-safe on one
// simulator, same contract as evaluate_incremental.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "geometry/layout.hpp"
#include "geometry/raster.hpp"
#include "litho/aerial.hpp"
#include "litho/config.hpp"
#include "litho/metrics.hpp"

namespace camo::litho {

/// One (dose, focus) corner of the process window.
struct Corner {
    double dose = 1.0;        ///< relative exposure dose (> 0)
    double defocus_nm = 0.0;  ///< focus plane; 0 = best focus
};

/// A dose x focus grid of corners. Corners are enumerated focus-major:
/// corner(i) = { doses[i % dose_count()], defocus_nm[i / dose_count()] }.
struct WindowSpec {
    std::vector<double> doses;
    std::vector<double> defocus_nm;

    /// The paper's standard window: {dose_min, 1, dose_max} x {0, defocus}.
    static WindowSpec standard(const LithoConfig& cfg);

    [[nodiscard]] int dose_count() const { return static_cast<int>(doses.size()); }
    [[nodiscard]] int focus_count() const { return static_cast<int>(defocus_nm.size()); }
    [[nodiscard]] int corner_count() const { return dose_count() * focus_count(); }
    [[nodiscard]] Corner corner(int i) const {
        return {doses[static_cast<std::size_t>(i % dose_count())],
                defocus_nm[static_cast<std::size_t>(i / dose_count())]};
    }

    /// Index of the focus plane matching `defocus` within kFocusMatchTolNm,
    /// or -1. The one plane matcher, shared by the dense and incremental
    /// paths so a focus resolves to the same applicator everywhere.
    [[nodiscard]] int find_focus(double defocus) const;

    /// Throws std::invalid_argument on an empty axis, a non-positive or
    /// non-finite dose, or a non-finite focus.
    void validate() const;
};

/// One corner's outcome: EPE measured against this corner's printed contour
/// (aerial at threshold / dose; pvband_nm2 is left 0 — the band is a window
/// property) plus the corner's printed area.
struct CornerResult {
    Corner corner;
    SimMetrics metrics;
    double printed_area_nm2 = 0.0;
};

/// Window-level aggregation over all corners.
struct WindowMetrics {
    std::vector<CornerResult> corners;  ///< in WindowSpec::corner order

    int worst_corner = -1;    ///< index of the corner with the largest sum |EPE|
    double worst_epe = 0.0;   ///< that corner's sum |EPE|

    /// CD through window, as the printed-area range over all corners
    /// (min at the innermost contour, max at the outermost).
    double cd_min_nm2 = 0.0;
    double cd_max_nm2 = 0.0;

    /// Exact PV band: area of (union - intersection) of the printed images
    /// over every corner of the window.
    double pv_band_exact_nm2 = 0.0;

    /// Legacy two-corner approximation over THIS window's dose extremes:
    /// pv_band_nm2 at (max dose, best focus) vs (min dose, defocus plane),
    /// computed when the window contains both standard focus planes; -1
    /// otherwise. Using the window's own dose range keeps the exact band a
    /// pixelwise superset for any spec; on the standard window the doses
    /// coincide with cfg.dose_min/dose_max, so this equals
    /// SimMetrics::pvband_nm2 exactly.
    double pv_band_two_corner_nm2 = -1.0;

    [[nodiscard]] double cd_range_nm2() const { return cd_max_nm2 - cd_min_nm2; }

    /// The (dose 1.0, best focus) corner, or nullptr if the window lacks it.
    [[nodiscard]] const CornerResult* nominal_corner() const;
};

/// Aggregate WindowMetrics from one aerial image per focus plane
/// (aerials[f] images spec.defocus_nm[f]). Shared by the dense sweep and the
/// incremental evaluator's window path so both aggregate through identical
/// arithmetic. `cfg` supplies dose_min/dose_max/defocus_nm for the legacy
/// two-corner band and epe_range_nm for the per-corner EPE search.
WindowMetrics window_metrics_from_aerials(const geo::SegmentedLayout& layout,
                                          const WindowSpec& spec,
                                          std::span<const geo::Raster> aerials,
                                          double threshold, double clip_offset_nm,
                                          const LithoConfig& cfg);

/// The dense (exact) sweep: per-focus kernel applicators resolved once at
/// construction, then evaluate() images a mask at every corner from one
/// rasterization and one forward FFT. Construction acquires shared kernels
/// through the registry (cheap after the first acquisition per process).
class ProcessWindowSweep {
public:
    ProcessWindowSweep(const LithoConfig& cfg, WindowSpec spec);

    [[nodiscard]] const WindowSpec& spec() const { return spec_; }
    [[nodiscard]] double threshold() const { return threshold_; }

    /// Evaluate a segmented layout under per-segment offsets at every corner.
    /// Const and thread-safe.
    [[nodiscard]] WindowMetrics evaluate(const geo::SegmentedLayout& layout,
                                         std::span<const int> offsets) const;

private:
    LithoConfig cfg_;
    WindowSpec spec_;
    double threshold_ = 0.0;
    std::vector<std::shared_ptr<const KernelApplicator>> planes_;  ///< one per focus
};

}  // namespace camo::litho
