#include "litho/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace camo::litho {
namespace {

// Twiddle table for a given size and direction, cached across calls. The
// cache is thread_local: the batch runtime calls the FFT from many workers
// concurrently, and per-thread tables make that race-free without a lock on
// this hot path (each worker typically uses one grid size, so the per-thread
// footprint is one table per direction).
const std::vector<Complex>& twiddles(int n, bool inverse) {
    thread_local std::vector<Complex> fwd_cache;
    thread_local std::vector<Complex> inv_cache;
    thread_local int fwd_n = 0;
    thread_local int inv_n = 0;

    std::vector<Complex>& cache = inverse ? inv_cache : fwd_cache;
    int& cached_n = inverse ? inv_n : fwd_n;
    if (cached_n != n) {
        cache.resize(static_cast<std::size_t>(n) / 2);
        const double sign = inverse ? 1.0 : -1.0;
        for (int k = 0; k < n / 2; ++k) {
            const double ang = sign * 2.0 * std::numbers::pi * k / n;
            cache[static_cast<std::size_t>(k)] =
                Complex(static_cast<float>(std::cos(ang)), static_cast<float>(std::sin(ang)));
        }
        cached_n = n;
    }
    return cache;
}

void fft_core(std::span<Complex> a, bool inverse) {
    const int n = static_cast<int>(a.size());
    if (!is_pow2(n)) throw std::invalid_argument("fft: size must be a power of two");

    // Bit-reversal permutation.
    for (int i = 1, j = 0; i < n; ++i) {
        int bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j ^= bit;
        if (i < j) std::swap(a[static_cast<std::size_t>(i)], a[static_cast<std::size_t>(j)]);
    }

    const auto& tw = twiddles(n, inverse);
    for (int len = 2; len <= n; len <<= 1) {
        const int step = n / len;
        for (int i = 0; i < n; i += len) {
            for (int k = 0; k < len / 2; ++k) {
                const Complex w = tw[static_cast<std::size_t>(k * step)];
                Complex& u = a[static_cast<std::size_t>(i + k)];
                Complex& v = a[static_cast<std::size_t>(i + k + len / 2)];
                const Complex t = v * w;
                v = u - t;
                u = u + t;
            }
        }
    }
}

}  // namespace

bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

void fft_forward(std::span<Complex> data) { fft_core(data, false); }

void fft_inverse(std::span<Complex> data) {
    fft_core(data, true);
    const float scale = 1.0F / static_cast<float>(data.size());
    for (Complex& c : data) c *= scale;
}

namespace {

void transform_rows(std::span<Complex> grid, int n, bool inverse,
                    std::span<const std::uint8_t> row_mask) {
    for (int r = 0; r < n; ++r) {
        if (!row_mask.empty() && !row_mask[static_cast<std::size_t>(r)]) continue;
        fft_core(grid.subspan(static_cast<std::size_t>(r) * static_cast<std::size_t>(n),
                              static_cast<std::size_t>(n)),
                 inverse);
    }
}

void transform_cols(std::span<Complex> grid, int n, bool inverse) {
    std::vector<Complex> col(static_cast<std::size_t>(n));
    for (int c = 0; c < n; ++c) {
        for (int r = 0; r < n; ++r) {
            col[static_cast<std::size_t>(r)] =
                grid[static_cast<std::size_t>(r) * static_cast<std::size_t>(n) +
                     static_cast<std::size_t>(c)];
        }
        fft_core(col, inverse);
        for (int r = 0; r < n; ++r) {
            grid[static_cast<std::size_t>(r) * static_cast<std::size_t>(n) +
                 static_cast<std::size_t>(c)] = col[static_cast<std::size_t>(r)];
        }
    }
}

}  // namespace

void fft2d_forward(std::span<Complex> grid, int n) {
    transform_rows(grid, n, false, {});
    transform_cols(grid, n, false);
}

void fft2d_inverse(std::span<Complex> grid, int n) {
    transform_rows(grid, n, true, {});
    transform_cols(grid, n, true);
    const float scale = 1.0F / (static_cast<float>(n) * static_cast<float>(n));
    for (Complex& c : grid) c *= scale;
}

void fft2d_inverse_rowsparse(std::span<Complex> grid, int n,
                             std::span<const std::uint8_t> row_nonzero) {
    transform_rows(grid, n, true, row_nonzero);
    transform_cols(grid, n, true);
    const float scale = 1.0F / (static_cast<float>(n) * static_cast<float>(n));
    for (Complex& c : grid) c *= scale;
}

}  // namespace camo::litho
