// Aerial-image computation: applies a SOCS kernel set to a mask spectrum.
#pragma once

#include <span>
#include <vector>

#include "geometry/raster.hpp"
#include "litho/config.hpp"
#include "litho/fft.hpp"
#include "litho/tcc.hpp"

namespace camo::litho {

/// Forward-FFT a coverage raster into a mask spectrum (row-major n*n).
std::vector<Complex> mask_spectrum(const geo::Raster& mask);

/// Rasterize mask + SRAF polygons (clip coordinates) onto cfg's simulation
/// grid, centring a clip of `clip_size_nm`. The one rasterization routine
/// behind LithoSim::evaluate and the process-window sweep — sharing it keeps
/// their rasters bit-identical.
geo::Raster rasterize_clip(const LithoConfig& cfg, std::span<const geo::Polygon> mask,
                           std::span<const geo::Polygon> srafs, int clip_size_nm);

/// Applies one kernel set to mask spectra. The applicator precomputes the
/// wrapped lattice addresses of the kernel support and the set of occupied
/// spectrum rows, so each kernel costs one row-sparse inverse FFT.
class KernelApplicator {
public:
    KernelApplicator(KernelSet kernels, int grid);

    /// I(x) = sum_k lambda_k |IFFT(Phi_k .* M)|^2, returned on the mask grid.
    [[nodiscard]] geo::Raster apply(std::span<const Complex> spectrum, double pixel_nm) const;

    [[nodiscard]] const KernelSet& kernels() const { return kernels_; }

private:
    KernelSet kernels_;
    int grid_;
    std::vector<int> pos_;                    // wrapped flat index per support entry
    std::vector<std::uint8_t> row_nonzero_;   // rows containing any support entry
};

}  // namespace camo::litho
