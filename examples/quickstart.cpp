// Quickstart: the smallest end-to-end OPC flow.
//
// Generates one via clip, inserts SRAFs, runs the rule-based OPC engine
// against the lithography simulator, and reports EPE / PV band before and
// after correction. Also writes the printed-contour image to quickstart.ppm.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/experiment.hpp"
#include "layout/render.hpp"
#include "opc/rule_engine.hpp"

int main() {
    using namespace camo;

    // 1. A lithography simulator (kernels are cached under data/ after the
    //    first run).
    litho::LithoSim sim(core::Experiment::litho_config());
    std::printf("resist threshold (auto-calibrated): %.4f\n", sim.threshold());

    // 2. One random via clip with SRAFs, fragmented into movable segments.
    const auto clips = layout::via_test_set(core::Experiment::kDatasetSeed);
    const auto layouts = core::fragment_via_clips({clips[0]});
    const geo::SegmentedLayout& layout = layouts[0];
    std::printf("clip %s: %zu vias, %d segments, %zu SRAFs\n", clips[0].name.c_str(),
                clips[0].targets.size(), layout.num_segments(), layout.srafs().size());

    // 3. Evaluate the uncorrected mask.
    const std::vector<int> zeros(static_cast<std::size_t>(layout.num_segments()), 0);
    const litho::SimMetrics before = sim.evaluate(layout, zeros);
    std::printf("before OPC: sum|EPE| = %.1f nm, PV band = %.0f nm^2\n", before.sum_abs_epe,
                before.pvband_nm2);

    // 4. Run rule-based OPC (the Calibre stand-in).
    opc::RuleEngine engine;
    const opc::EngineResult res = engine.optimize(layout, sim, core::Experiment::via_options());
    std::printf("after %d iterations: sum|EPE| = %.1f nm, PV band = %.0f nm^2 (%.2f s)\n",
                res.iterations, res.final_metrics.sum_abs_epe, res.final_metrics.pvband_nm2,
                res.runtime_s);

    // 5. Render the printed contour.
    const auto mask_polys = layout.reconstruct_mask(res.final_offsets);
    const geo::Raster mask = sim.rasterize(mask_polys, layout.srafs(), layout.clip_size_nm());
    const geo::Raster printed = sim.printed(sim.aerial_nominal(mask));
    layout::write_ppm_gray("quickstart.ppm", printed);
    std::printf("printed contour written to quickstart.ppm\n");
    return 0;
}
