// Process-window analysis: how the printed CD of a corrected via moves
// across dose and focus corners — the robustness view behind the paper's
// PV-band metric. Uses LithoSim::evaluate_window, which rasterizes the mask
// once and images every corner from one shared spectrum (one aerial per
// focus plane), instead of re-imaging per corner by hand.
//
// Build & run:  ./build/examples/process_window
#include <cstdio>

#include "core/experiment.hpp"
#include "opc/rule_engine.hpp"

int main() {
    using namespace camo;

    litho::LithoSim sim(core::Experiment::litho_config());
    const auto clips = layout::via_test_set(core::Experiment::kDatasetSeed);
    const auto layouts = core::fragment_via_clips({clips[0]});
    const geo::SegmentedLayout& layout = layouts[0];

    // OPC first, then sweep corners on the corrected mask.
    opc::RuleEngine engine;
    const opc::EngineResult res = engine.optimize(layout, sim, core::Experiment::via_options());

    litho::WindowSpec spec;
    spec.doses = {0.96, 0.98, 1.00, 1.02, 1.04};
    spec.defocus_nm = {0.0, sim.config().defocus_nm};
    const litho::WindowMetrics window = sim.evaluate_window(layout, res.final_offsets, spec);

    std::printf("process window for %s after OPC (printed area in 1e3 nm^2):\n",
                clips[0].name.c_str());
    std::printf("%-10s %12s %12s\n", "dose\\focus", "best focus", "defocus");
    for (int d = 0; d < spec.dose_count(); ++d) {
        const auto& best = window.corners[static_cast<std::size_t>(d)];
        const auto& defoc = window.corners[static_cast<std::size_t>(spec.dose_count() + d)];
        std::printf("%-10.2f %12.1f %12.1f\n", best.corner.dose,
                    best.printed_area_nm2 / 1000.0, defoc.printed_area_nm2 / 1000.0);
    }

    const litho::Corner worst = spec.corner(window.worst_corner);
    std::printf("worst corner: dose %.2f @ defocus %.0f nm, sum|EPE| %.1f nm\n", worst.dose,
                worst.defocus_nm, window.worst_epe);
    std::printf("exact PV band over all %d corners: %.0f nm^2 "
                "(two-corner approximation: %.0f nm^2)\n",
                spec.corner_count(), window.pv_band_exact_nm2,
                window.pv_band_two_corner_nm2);
    std::printf("printed area must grow with dose and shrink with defocus; the\n");
    std::printf("PV band is the area between the outermost and innermost contours.\n");
    return 0;
}
