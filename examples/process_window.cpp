// Process-window analysis: how the printed CD of a corrected via moves
// across dose and focus corners — the robustness view behind the paper's
// PV-band metric.
//
// Build & run:  ./build/examples/process_window
#include <cstdio>

#include "core/experiment.hpp"
#include "opc/rule_engine.hpp"

int main() {
    using namespace camo;

    litho::LithoSim sim(core::Experiment::litho_config());
    const auto clips = layout::via_test_set(core::Experiment::kDatasetSeed);
    const auto layouts = core::fragment_via_clips({clips[0]});
    const geo::SegmentedLayout& layout = layouts[0];

    // OPC first, then sweep corners on the corrected mask.
    opc::RuleEngine engine;
    const opc::EngineResult res = engine.optimize(layout, sim, core::Experiment::via_options());
    const auto mask_polys = layout.reconstruct_mask(res.final_offsets);
    const geo::Raster mask = sim.rasterize(mask_polys, layout.srafs(), layout.clip_size_nm());
    const geo::Raster nominal = sim.aerial_nominal(mask);
    const geo::Raster defocus = sim.aerial_defocus(mask);

    std::printf("process window for %s after OPC (printed area in 1e3 nm^2):\n",
                clips[0].name.c_str());
    std::printf("%-10s", "dose\\focus");
    std::printf(" %12s %12s\n", "best focus", "defocus");
    for (double dose : {0.96, 0.98, 1.00, 1.02, 1.04}) {
        // Bind the printed rasters: data() is a span into the Raster, and a
        // range-for over a temporary's span is a use-after-free in C++20.
        const geo::Raster printed_nom = sim.printed(nominal, dose);
        const geo::Raster printed_def = sim.printed(defocus, dose);
        double area_nom = 0.0;
        double area_def = 0.0;
        for (float v : printed_nom.data()) area_nom += v;
        for (float v : printed_def.data()) area_def += v;
        const double px2 = sim.config().pixel_nm * sim.config().pixel_nm / 1000.0;
        std::printf("%-10.2f %12.1f %12.1f\n", dose, area_nom * px2, area_def * px2);
    }

    const double pvb = litho::pv_band_nm2(nominal, defocus, sim.threshold(),
                                          sim.config().dose_min, sim.config().dose_max);
    std::printf("PV band (outer dose %.2f @ focus vs inner dose %.2f @ defocus): %.0f nm^2\n",
                sim.config().dose_max, sim.config().dose_min, pvb);
    std::printf("printed area must grow with dose and shrink with defocus; the\n");
    std::printf("PV band is the area between the outermost and innermost contours.\n");
    return 0;
}
