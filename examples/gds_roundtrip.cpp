// GDSII interchange: generate a metal clip, write it as a GDSII stream,
// read it back and verify geometry survived the roundtrip — the workflow
// for interfacing this library with external EDA tools.
//
// Build & run:  ./build/examples/gds_roundtrip
#include <cstdio>

#include "core/experiment.hpp"
#include "layout/gdsii.hpp"

int main() {
    using namespace camo;

    const auto clips = layout::metal_test_set(core::Experiment::kDatasetSeed);
    const layout::Clip& clip = clips[0];  // M1

    layout::GdsLibrary lib;
    lib.name = "CAMO_METAL";
    lib.structure = clip.name;
    lib.layers[1] = clip.targets;
    layout::write_gds("metal_clip.gds", lib);

    const layout::GdsLibrary back = layout::read_gds("metal_clip.gds");
    double area_out = 0.0;
    double area_in = 0.0;
    for (const auto& p : clip.targets) area_out += p.area();
    for (const auto& p : back.layers.at(1)) area_in += p.area();

    std::printf("wrote %zu wires of %s to metal_clip.gds\n", clip.targets.size(),
                clip.name.c_str());
    std::printf("read back %zu polygons, structure '%s'\n", back.layers.at(1).size(),
                back.structure.c_str());
    std::printf("total area: written %.0f nm^2, read %.0f nm^2 -> %s\n", area_out, area_in,
                area_out == area_in ? "exact match" : "MISMATCH");
    return area_out == area_in ? 0 : 1;
}
