// Metal-layer OPC with CAMO, demonstrating the measure-point protocol and
// the modulator's effect on a complex layer.
//
// Build & run:  ./build/examples/metal_opc
#include <cstdio>

#include "common/logging.hpp"
#include "core/experiment.hpp"

int main() {
    using namespace camo;
    set_log_level(LogLevel::kInfo);

    litho::LithoSim sim(core::Experiment::litho_config());
    const auto opt = core::Experiment::metal_options();

    const core::CamoConfig cfg = core::Experiment::metal_camo_config();
    core::CamoEngine camo(cfg);
    const auto train_clips = core::fragment_metal_clips(
        layout::metal_training_set(core::Experiment::kDatasetSeed, 5));
    core::ensure_trained(camo, train_clips, sim, opt,
                         core::Experiment::weights_path(cfg, "metal"));

    const auto clips = layout::metal_test_set(core::Experiment::kDatasetSeed);
    const auto layouts = core::fragment_metal_clips({clips[7]});  // M8: regular pattern
    const geo::SegmentedLayout& layout = layouts[0];

    const int points = static_cast<int>(layout.measure_points().size());
    std::printf("%s: %zu wires, %d segments, %d measure points\n", clips[7].name.c_str(),
                clips[7].targets.size(), layout.num_segments(), points);

    const opc::EngineResult res = camo.optimize(layout, sim, opt);
    std::printf("sum|EPE|: %.1f -> %.1f nm (%.2f nm per point) in %d iterations, %.2f s\n",
                res.epe_history.front(), res.final_metrics.sum_abs_epe,
                res.final_metrics.sum_abs_epe / points, res.iterations, res.runtime_s);
    std::printf("PV band: %.0f -> %.0f nm^2\n", res.pvb_history.front(),
                res.final_metrics.pvband_nm2);

    // Show the modulator's contribution on this clip (paper Section 4.4).
    camo.set_modulator_enabled(false);
    const opc::EngineResult un = camo.optimize(layout, sim, opt);
    std::printf("without modulator: sum|EPE| = %.1f nm in %d iterations\n",
                un.final_metrics.sum_abs_epe, un.iterations);
    return 0;
}
