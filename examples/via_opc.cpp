// Via-layer OPC with the full CAMO engine.
//
// Loads the pre-trained via policy (training it on first use), optimizes a
// test clip, prints the per-iteration EPE trajectory and exports the result
// as a GDSII file with targets (layer 1), SRAFs (layer 2) and the optimized
// mask (layer 10).
//
// Build & run:  ./build/examples/via_opc
#include <cstdio>

#include "common/logging.hpp"
#include "core/experiment.hpp"
#include "layout/gdsii.hpp"

int main() {
    using namespace camo;
    set_log_level(LogLevel::kInfo);

    litho::LithoSim sim(core::Experiment::litho_config());
    const auto opt = core::Experiment::via_options();

    // Train or load the CAMO policy.
    const core::CamoConfig cfg = core::Experiment::via_camo_config();
    core::CamoEngine camo(cfg);
    const auto train_clips =
        core::fragment_via_clips(layout::via_training_set(core::Experiment::kDatasetSeed));
    core::ensure_trained(camo, train_clips, sim, opt,
                         core::Experiment::weights_path(cfg, "via"));

    // Optimize one unseen test clip.
    const auto clips = layout::via_test_set(core::Experiment::kDatasetSeed);
    const auto layouts = core::fragment_via_clips({clips[4]});  // V5: 4 vias
    const opc::EngineResult res = camo.optimize(layouts[0], sim, opt);

    std::printf("%s on %s (%zu vias):\n", camo.name().c_str(), clips[4].name.c_str(),
                clips[4].targets.size());
    for (std::size_t t = 0; t < res.epe_history.size(); ++t) {
        std::printf("  step %zu: sum|EPE| = %.1f nm, PVB = %.0f nm^2\n", t, res.epe_history[t],
                    res.pvb_history[t]);
    }
    std::printf("finished in %d iterations, %.2f s\n", res.iterations, res.runtime_s);

    // Export everything to GDSII.
    layout::GdsLibrary lib;
    lib.name = "CAMO_VIA";
    lib.layers[1] = layouts[0].targets();
    lib.layers[2] = layouts[0].srafs();
    lib.layers[10] = layouts[0].reconstruct_mask(res.final_offsets);
    layout::write_gds("via_opc_result.gds", lib);
    std::printf("mask exported to via_opc_result.gds\n");
    return 0;
}
