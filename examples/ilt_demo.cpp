// Pixel-based inverse lithography (ILT) on a via clip — the free-form
// alternative to segment-based OPC that the paper cites as related work.
// Prints the contour-error trajectory and writes the optimized gray mask.
//
// Build & run:  ./build/examples/ilt_demo
#include <cstdio>

#include "core/experiment.hpp"
#include "layout/render.hpp"
#include "opc/ilt.hpp"

int main() {
    using namespace camo;

    litho::LithoSim sim(core::Experiment::litho_config());
    const auto clips = layout::via_test_set(core::Experiment::kDatasetSeed);
    const auto layouts = core::fragment_via_clips({clips[2]});  // V3: 3 vias

    opc::IltEngine ilt({.iterations = 15, .step = 4.0, .mask_steepness = 4.0,
                        .resist_steepness = 40.0});
    const opc::IltResult res = ilt.optimize(layouts[0], sim);

    std::printf("ILT on %s:\n", clips[2].name.c_str());
    for (std::size_t i = 0; i < res.loss_history.size(); ++i) {
        std::printf("  iter %2zu: contour L2 error = %.1f\n", i, res.loss_history[i]);
    }
    std::printf("loss %.1f -> %.1f, sum|EPE| at measure points = %.1f nm, %.2f s\n",
                res.initial_loss, res.final_loss, res.sum_abs_epe, res.runtime_s);

    layout::write_ppm_gray("ilt_mask.ppm", res.mask);
    const geo::Raster printed = sim.printed(sim.aerial_nominal(res.mask));
    layout::write_ppm_gray("ilt_printed.ppm", printed);
    std::printf("gray mask -> ilt_mask.ppm, printed contour -> ilt_printed.ppm\n");
    return 0;
}
