// camo_cli: command-line OPC driver.
//
//   camo_cli --in layout.gds --out result.gds [options]
//   camo_cli batch [batch options]
//   camo_cli sweep [batch options] [--doses a,b,..] [--focuses a,b,..]
//   camo_cli compare [compare options]
//   camo_cli chipgen --out chip.gds [--scenario S] [--cols N] [--rows N] [--pitch NM]
//   camo_cli shard [--in chip.gds | --scenario S --cols N --rows N] [--tile NM]
//                  [--halo NM] [--verify-monolithic] [shard options]
//   camo_cli serve [--requests N] [--clips N] [--queue-capacity N] [serve options]
//   camo_cli collect --out store.ctrj [--style S] [--clips N] [collect options]
//   camo_cli train --from-store store.ctrj --weights out.bin [train options]
//   camo_cli --list-scenarios
//
// collect / train split teacher-data collection from phase-1 imitation
// training through the packed trajectory store (src/rl/trajstore.hpp): N
// collect runs can feed one trainer, and `train --from-store` needs no
// lithography simulator at all. The store's canonical append order makes
// `train --from-store` weights byte-identical to `train --in-memory` at any
// --train-workers value.
//
// The streaming trio covers the full-chip path: chipgen writes a synthetic
// multi-tile chip from a registered scenario generator, shard cuts it into
// halo-padded tiles and streams them through the batch runtime before
// stitching one chip mask (--verify-monolithic proves the stream matches
// the barrier path bit-for-bit at 1/2/8 workers), and serve runs a
// long-lived request queue — priority scheduling, soft deadlines, and
// admission control that rejects with a reason when the queue is full —
// over one warm scheduler (kernels, simulators, policy shared across
// requests).
//
// An unknown subcommand prints the top-level usage and exits 2; every
// subcommand likewise exits 2 on unknown flags.
//
// Single-clip mode reads target polygons from a GDSII file (layer 1 by
// default), runs the selected OPC engine against the lithography simulator,
// and writes a GDSII file with targets (layer 1), SRAFs (layer 2, via style
// only) and the optimized mask (layer 10).
//
// Options:
//   --engine rule|oneshot|camo   engine selection        [rule]
//   --style via|metal            fragmentation style     [via]
//   --layer N                    input layer number      [1]
//   --clip N                     clip size in nm         [2000]
//   --iterations N               max OPC iterations      [style default]
//   --reward-mode M              nominal|worst|weighted: which corner(s) of
//                                the process window the engine optimizes
//                                [nominal]
//   --train-workers N            data-parallel trainer width on a
//                                cached-weights miss; <= 0 = all hardware
//                                threads. Trained weights are bit-identical
//                                at any value                [1]
//   --window                     evaluate the final mask through the
//                                standard process window and print the
//                                worst-corner |EPE| / exact PV band
//   --quiet                      suppress progress logs
//   --log-level L                quiet|info|debug (overrides --quiet)
//   --metrics-json PATH          enable the metrics registry and write its
//                                snapshot to PATH on exit
//   --trace PATH                 enable span tracing and write a Chrome
//                                trace-event file (Perfetto-loadable)
//
// Telemetry is observational only: all numeric outputs, GDS bytes, and
// trained weights are bit-identical with the flags on or off.
//
// Batch mode runs the parallel runtime over a generated via-clip stream and
// prints per-clip results plus aggregate throughput:
//
//   camo_cli batch [--clips N] [--threads N] [--engine rule|camo] [--batched]
//                  [--seed S] [--iterations N] [--train-workers N]
//                  [--reward-mode M] [--window] [--quiet]
//
// --batched (camo engine only) routes the batch through the lockstep batched
// inference path: every wave issues one policy forward over all clips
// awaiting actions instead of one forward per clip. Results are identical to
// the threaded path on the same backend.
//
// Sweep mode is batch mode plus a multi-corner process-window evaluation of
// every corrected mask (defaults to the standard {dose_min, 1, dose_max} x
// {0, defocus} window; --doses/--focuses set an arbitrary grid):
//
//   camo_cli sweep [batch options] [--doses 0.96,1.0,1.04]
//                  [--focuses 0,12.5,25]
//
// Compare mode runs the scenario-matrix quality gate — every engine x
// registered scenario x reward mode through the batch runtime — prints the
// ranked table, and optionally writes the table as JSON, checks it against
// golden regression bounds (exit 1 on a violation), or regenerates the
// golden file:
//
//   camo_cli compare [--scenarios a,b,..] [--engines rule,oneshot,camo,rlopc,ilt]
//                    [--rewards nominal,worst,weighted] [--clips N]
//                    [--threads N] [--seed S] [--iterations N]
//                    [--ilt-iterations N] [--json PATH] [--golden PATH]
//                    [--write-golden PATH] [--slack X] [--list-scenarios]
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/file_io.hpp"
#include "common/logging.hpp"
#include "common/parse.hpp"
#include "common/timer.hpp"
#include "core/experiment.hpp"
#include "layout/gdsii.hpp"
#include "layout/metal_gen.hpp"
#include "layout/shard.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "opc/one_shot.hpp"
#include "opc/rule_engine.hpp"
#include "opc/sraf.hpp"
#include "rl/trajstore.hpp"
#include "runtime/batch.hpp"
#include "scenario/comparer.hpp"
#include "scenario/scenario.hpp"
#include "service/server.hpp"

namespace {

using namespace camo;

// ---- Checked flag parsing ---------------------------------------------------
// Every numeric flag goes through common/parse.hpp: the whole value must be a
// well-formed, in-range number (no trailing garbage, no overflow, no
// exceptions) and range violations get a flag-specific diagnostic before the
// caller prints usage and exits 2. The std::sto* family this replaces
// TERMINATED the process on "--threads foo" and silently read "1e99" as 1.

bool flag_int(const char* flag, const std::string& v, int& out) {
    if (!parse_int(v, out)) {
        std::fprintf(stderr, "%s: expected an integer, got '%s'\n", flag, v.c_str());
        return false;
    }
    return true;
}

bool flag_int_min(const char* flag, const std::string& v, int min, int& out) {
    int x = 0;
    if (!flag_int(flag, v, x)) return false;
    if (x < min) {
        std::fprintf(stderr, "%s: must be >= %d, got %d\n", flag, min, x);
        return false;
    }
    out = x;
    return true;
}

bool flag_u64(const char* flag, const std::string& v, std::uint64_t& out) {
    if (!parse_u64(v, out)) {
        std::fprintf(stderr, "%s: expected an unsigned integer, got '%s'\n", flag, v.c_str());
        return false;
    }
    return true;
}

bool flag_double_min(const char* flag, const std::string& v, double min, double& out) {
    double x = 0.0;
    if (!parse_double(v, x)) {
        std::fprintf(stderr, "%s: expected a number, got '%s'\n", flag, v.c_str());
        return false;
    }
    if (x < min) {
        std::fprintf(stderr, "%s: must be >= %g, got %g\n", flag, min, x);
        return false;
    }
    out = x;
    return true;
}

bool flag_double_list(const char* flag, const std::string& v, std::vector<double>& out) {
    if (!parse_double_list(v, out)) {
        std::fprintf(stderr,
                     "%s: expected a comma-separated list of numbers (e.g. 0.96,1.0,1.04), "
                     "got '%s'\n",
                     flag, v.c_str());
        return false;
    }
    return true;
}

// Shared telemetry/logging switches (--metrics-json / --trace / --log-level).
struct ObsCliOptions {
    std::string metrics_json;  ///< empty = metrics registry disabled
    std::string trace;         ///< empty = span tracing disabled
    std::string log_level;     ///< empty = derived from --quiet
};

bool parse_log_level(const std::string& s, LogLevel& lvl) {
    if (s == "quiet") {
        lvl = LogLevel::kQuiet;
    } else if (s == "info") {
        lvl = LogLevel::kInfo;
    } else if (s == "debug") {
        lvl = LogLevel::kDebug;
    } else {
        return false;
    }
    return true;
}

/// Returns false (after printing a diagnostic) on a bad --log-level value.
bool apply_obs_options(const ObsCliOptions& o, bool quiet) {
    LogLevel lvl = quiet ? LogLevel::kQuiet : LogLevel::kInfo;
    if (!o.log_level.empty() && !parse_log_level(o.log_level, lvl)) {
        std::fprintf(stderr, "unknown log level: %s\n", o.log_level.c_str());
        return false;
    }
    set_log_level(lvl);
    if (!o.metrics_json.empty()) obs::set_metrics_enabled(true);
    if (!o.trace.empty()) obs::set_tracing_enabled(true);
    return true;
}

void write_obs_reports(const ObsCliOptions& o) {
    try {
        if (!o.metrics_json.empty()) obs::write_metrics_json(o.metrics_json);
        if (!o.trace.empty()) obs::write_trace_json(o.trace);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "telemetry export failed: %s\n", e.what());
    }
}

struct CliOptions {
    std::string in;
    std::string out;
    std::string engine = "rule";
    std::string style = "via";
    int layer = 1;
    int clip_nm = 2000;
    int iterations = -1;
    int train_workers = 1;  // data-parallel trainer width; <= 0 = all threads
    rl::RewardMode reward_mode = rl::RewardMode::kNominal;
    bool window = false;
    bool quiet = false;
    ObsCliOptions obs;
};

bool parse_args(int argc, char** argv, CliOptions& o) {
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&](std::string& dst) {
            if (i + 1 >= argc) return false;
            dst = argv[++i];
            return true;
        };
        std::string v;
        if (a == "--in" && next(v)) {
            o.in = v;
        } else if (a == "--out" && next(v)) {
            o.out = v;
        } else if (a == "--engine" && next(v)) {
            o.engine = v;
        } else if (a == "--style" && next(v)) {
            o.style = v;
        } else if (a == "--layer" && next(v)) {
            if (!flag_int_min("--layer", v, 0, o.layer)) return false;
        } else if (a == "--clip" && next(v)) {
            if (!flag_int_min("--clip", v, 1, o.clip_nm)) return false;
        } else if (a == "--iterations" && next(v)) {
            if (!flag_int_min("--iterations", v, 1, o.iterations)) return false;
        } else if (a == "--train-workers" && next(v)) {
            if (!flag_int("--train-workers", v, o.train_workers)) return false;
        } else if (a == "--reward-mode" && next(v)) {
            if (!parse_reward_mode(v, o.reward_mode)) {
                std::fprintf(stderr, "unknown reward mode: %s\n", v.c_str());
                return false;
            }
        } else if (a == "--window") {
            o.window = true;
        } else if (a == "--quiet") {
            o.quiet = true;
        } else if (a == "--log-level" && next(v)) {
            o.obs.log_level = v;
        } else if (a == "--metrics-json" && next(v)) {
            o.obs.metrics_json = v;
        } else if (a == "--trace" && next(v)) {
            o.obs.trace = v;
        } else {
            std::fprintf(stderr, "unknown or incomplete argument: %s\n", a.c_str());
            return false;
        }
    }
    return !o.in.empty() && !o.out.empty();
}

struct BatchCliOptions {
    int clips = 32;
    int threads = 0;  // 0 = all hardware threads
    std::string engine = "rule";
    std::uint64_t seed = core::Experiment::kDatasetSeed;
    int iterations = -1;
    int train_workers = 1;  // data-parallel trainer width; <= 0 = all threads
    rl::RewardMode reward_mode = rl::RewardMode::kNominal;
    bool quiet = false;
    ObsCliOptions obs;
    bool window = false;             // sweep mode / batch --window
    bool batched = false;            // camo: lockstep batched policy inference
    std::vector<double> doses;       // empty = standard window
    std::vector<double> focuses_nm;  // empty = standard window
};

bool parse_batch_args(int argc, char** argv, BatchCliOptions& o) {
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&](std::string& dst) {
            if (i + 1 >= argc) return false;
            dst = argv[++i];
            return true;
        };
        std::string v;
        if (a == "--clips" && next(v)) {
            if (!flag_int_min("--clips", v, 1, o.clips)) return false;
        } else if (a == "--threads" && next(v)) {
            if (!flag_int_min("--threads", v, 1, o.threads)) return false;
        } else if (a == "--engine" && next(v)) {
            o.engine = v;
        } else if (a == "--seed" && next(v)) {
            if (!flag_u64("--seed", v, o.seed)) return false;
        } else if (a == "--iterations" && next(v)) {
            if (!flag_int_min("--iterations", v, 1, o.iterations)) return false;
        } else if (a == "--train-workers" && next(v)) {
            if (!flag_int("--train-workers", v, o.train_workers)) return false;
        } else if (a == "--batched") {
            o.batched = true;
        } else if (a == "--reward-mode" && next(v)) {
            if (!parse_reward_mode(v, o.reward_mode)) {
                std::fprintf(stderr, "unknown reward mode: %s\n", v.c_str());
                return false;
            }
        } else if (a == "--window") {
            o.window = true;  // batch --window == sweep mode
        } else if (a == "--quiet") {
            o.quiet = true;
        } else if (a == "--log-level" && next(v)) {
            o.obs.log_level = v;
        } else if (a == "--metrics-json" && next(v)) {
            o.obs.metrics_json = v;
        } else if (a == "--trace" && next(v)) {
            o.obs.trace = v;
        } else if (o.window && a == "--doses" && next(v)) {
            if (!flag_double_list("--doses", v, o.doses)) return false;
        } else if (o.window && a == "--focuses" && next(v)) {
            if (!flag_double_list("--focuses", v, o.focuses_nm)) return false;
        } else {
            std::fprintf(stderr, "unknown or incomplete argument: %s\n", a.c_str());
            return false;
        }
    }
    if (o.engine != "rule" && o.engine != "camo") {
        std::fprintf(stderr, "--engine: expected rule or camo, got '%s'\n", o.engine.c_str());
        return false;
    }
    if (o.batched && o.engine != "camo") {
        std::fprintf(stderr, "--batched requires --engine camo\n");
        return false;
    }
    return true;
}

int batch_main(int argc, char** argv, bool window) {
    BatchCliOptions cli;
    cli.window = window;
    if (!parse_batch_args(argc, argv, cli)) {
        std::fprintf(stderr,
                     "usage: camo_cli %s [--clips N] [--threads N] [--engine rule|camo]"
                     " [--batched] [--seed S] [--iterations N] [--train-workers N]"
                     " [--reward-mode nominal|worst|weighted]"
                     " [--quiet] [--log-level quiet|info|debug]"
                     " [--metrics-json PATH] [--trace PATH]%s\n",
                     window ? "sweep" : "batch",
                     window ? " [--doses a,b,..] [--focuses a,b,..]" : " [--window]");
        return 2;
    }
    if (!apply_obs_options(cli.obs, cli.quiet)) return 2;

    const std::vector<layout::Clip> raw = layout::via_batch_set(cli.seed, cli.clips);
    const std::vector<geo::SegmentedLayout> clips = core::fragment_via_clips(raw);
    std::vector<std::string> names;
    names.reserve(raw.size());
    for (const layout::Clip& c : raw) names.push_back(c.name);

    runtime::BatchOptions opt;
    opt.threads = cli.threads;
    opt.seed = cli.seed;
    opt.opc = core::Experiment::via_options();
    if (cli.iterations > 0) opt.opc.max_iterations = cli.iterations;
    opt.opc.objective = cli.reward_mode;
    if (cli.window) {
        opt.window = true;
        litho::WindowSpec spec = litho::WindowSpec::standard(core::Experiment::litho_config());
        if (!cli.doses.empty()) spec.doses = cli.doses;
        if (!cli.focuses_nm.empty()) spec.defocus_nm = cli.focuses_nm;
        try {
            spec.validate();
        } catch (const std::exception& e) {
            std::fprintf(stderr, "bad window spec: %s\n", e.what());
            return 2;
        }
        opt.window_spec = spec;
        // A custom sweep window also becomes the reward-mode objective, so
        // the engines optimize the same corners the report evaluates.
        if (cli.reward_mode != rl::RewardMode::kNominal) opt.opc.window = spec;
    }

    runtime::BatchScheduler scheduler(core::Experiment::litho_config(), opt);

    runtime::BatchResult res;
    if (cli.engine == "rule") {
        res = scheduler.run_rule(clips, {}, names);
    } else {
        core::CamoConfig cfg = core::Experiment::via_camo_config();
        // Trainer width on a cached-weights miss. Deliberately not part of
        // the weight-cache key: results are bit-identical at any value.
        cfg.train_workers = cli.train_workers;
        core::CamoEngine engine(cfg);
        litho::LithoSim train_sim(core::Experiment::litho_config());
        const auto train = core::fragment_via_clips(
            layout::via_training_set(core::Experiment::kDatasetSeed));
        core::ensure_trained(engine, train, train_sim, opt.opc,
                             core::Experiment::weights_path(cfg, "via", cli.reward_mode));
        res = cli.batched ? scheduler.run_camo_batched(clips, engine, names)
                          : scheduler.run_camo(clips, engine, names);
    }

    if (cli.window || cli.reward_mode != rl::RewardMode::kNominal) {
        const litho::WindowSpec& spec = cli.window ? scheduler.options().window_spec
                                                   : scheduler.options().opc.window;
        std::printf("process window: %d doses x %d focus planes = %d corners (reward %s)\n",
                    spec.dose_count(), spec.focus_count(), spec.corner_count(),
                    rl::reward_mode_name(cli.reward_mode));
        std::printf("%-6s %6s %6s %10s %10s %10s %10s %12s\n", "Clip", "Segs", "Iters", "EPE",
                    "WorstEPE", "PVBexact", "PVB2c", "CDrange");
        for (const runtime::ClipResult& c : res.clips) {
            if (!c.error.empty()) {
                std::printf("%-6s FAILED: %s\n", c.name.c_str(), c.error.c_str());
                continue;
            }
            if (!c.window) continue;
            const litho::WindowMetrics& w = *c.window;
            char two_corner[32] = "n/a";  // window lacks the standard planes
            if (w.pv_band_two_corner_nm2 >= 0.0) {
                std::snprintf(two_corner, sizeof two_corner, "%.0f", w.pv_band_two_corner_nm2);
            }
            std::printf("%-6s %6d %6d %10.1f %10.1f %10.0f %10s %12.0f\n", c.name.c_str(),
                        c.segments, c.iterations, c.final_epe, w.worst_epe,
                        w.pv_band_exact_nm2, two_corner, w.cd_range_nm2());
        }
    } else {
        std::printf("%-6s %6s %6s %10s %10s %10s %6s\n", "Clip", "Segs", "Iters", "EPE0",
                    "EPE", "PVB", "RT");
        for (const runtime::ClipResult& c : res.clips) {
            if (!c.error.empty()) {
                std::printf("%-6s FAILED: %s\n", c.name.c_str(), c.error.c_str());
                continue;
            }
            std::printf("%-6s %6d %6d %10.1f %10.1f %10.0f %6.2f\n", c.name.c_str(), c.segments,
                        c.iterations, c.initial_epe, c.final_epe, c.pvband_nm2, c.runtime_s);
        }
    }
    std::printf("%s\n", res.summary().c_str());
    write_obs_reports(cli.obs);
    return res.failed == 0 ? 0 : 1;
}

// "a,b,c" -> {"a","b","c"}; empty pieces are dropped.
std::vector<std::string> split_list(const std::string& s) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t comma = s.find(',', pos);
        const std::size_t end = comma == std::string::npos ? s.size() : comma;
        if (end > pos) out.push_back(s.substr(pos, end - pos));
        if (comma == std::string::npos) break;
        pos = comma + 1;
    }
    return out;
}

void print_scenarios() {
    const scenario::Registry& reg = scenario::Registry::instance();
    for (const std::string& name : reg.names()) {
        const scenario::Scenario sc = reg.get(name);
        std::printf("%-14s %-6s %s\n", name.c_str(), scenario::style_name(sc.style),
                    sc.description.c_str());
    }
}

void print_compare_usage() {
    std::fprintf(stderr,
                 "usage: camo_cli compare [--scenarios a,b,..]"
                 " [--engines rule,oneshot,camo,rlopc,ilt]"
                 " [--rewards nominal,worst,weighted] [--clips N] [--threads N]"
                 " [--seed S] [--iterations N] [--ilt-iterations N]"
                 " [--train-clips N] [--json PATH] [--golden PATH]"
                 " [--write-golden PATH] [--slack X] [--list-scenarios]"
                 " [--quiet] [--log-level quiet|info|debug]"
                 " [--metrics-json PATH] [--trace PATH]\n");
}

int compare_main(int argc, char** argv) {
    scenario::CompareOptions cmp;
    std::string json_path;
    std::string golden_path;
    std::string write_golden_path;
    double slack = 0.25;
    bool quiet = false;
    bool list = false;
    ObsCliOptions obs;

    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&](std::string& dst) {
            if (i + 1 >= argc) return false;
            dst = argv[++i];
            return true;
        };
        bool ok = true;
        std::string v;
        if (a == "--scenarios" && next(v)) {
            cmp.scenarios = split_list(v);
        } else if (a == "--engines" && next(v)) {
            cmp.engines = split_list(v);
        } else if (a == "--rewards" && next(v)) {
            cmp.rewards.clear();
            for (const std::string& r : split_list(v)) {
                rl::RewardMode mode{};
                if (!rl::parse_reward_mode(r, mode)) {
                    std::fprintf(stderr, "unknown reward mode: %s\n", r.c_str());
                    return 2;
                }
                cmp.rewards.push_back(mode);
            }
        } else if (a == "--clips" && next(v)) {
            ok = flag_int_min("--clips", v, 1, cmp.clips);
        } else if (a == "--threads" && next(v)) {
            ok = flag_int_min("--threads", v, 1, cmp.threads);
        } else if (a == "--seed" && next(v)) {
            ok = flag_u64("--seed", v, cmp.seed);
        } else if (a == "--iterations" && next(v)) {
            ok = flag_int_min("--iterations", v, 1, cmp.max_iterations);
        } else if (a == "--ilt-iterations" && next(v)) {
            ok = flag_int_min("--ilt-iterations", v, 1, cmp.ilt_iterations);
        } else if (a == "--train-clips" && next(v)) {
            ok = flag_int_min("--train-clips", v, 1, cmp.train_clips);
        } else if (a == "--json" && next(v)) {
            json_path = v;
        } else if (a == "--golden" && next(v)) {
            golden_path = v;
        } else if (a == "--write-golden" && next(v)) {
            write_golden_path = v;
        } else if (a == "--slack" && next(v)) {
            ok = flag_double_min("--slack", v, 0.0, slack);
        } else if (a == "--list-scenarios") {
            list = true;
        } else if (a == "--quiet") {
            quiet = true;
        } else if (a == "--log-level" && next(v)) {
            obs.log_level = v;
        } else if (a == "--metrics-json" && next(v)) {
            obs.metrics_json = v;
        } else if (a == "--trace" && next(v)) {
            obs.trace = v;
        } else {
            std::fprintf(stderr, "unknown or incomplete argument: %s\n", a.c_str());
            ok = false;
        }
        if (!ok) {
            print_compare_usage();
            return 2;
        }
    }
    if (list) {
        print_scenarios();
        return 0;
    }
    if (!apply_obs_options(obs, quiet)) return 2;

    scenario::CompareResult result;
    try {
        scenario::PolicyComparer comparer(cmp);
        result = comparer.run();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "compare failed: %s\n", e.what());
        print_compare_usage();
        return 2;
    }

    if (!quiet) std::printf("%s\n", result.table().c_str());
    int failed_cells = 0;
    for (const scenario::CellResult& c : result.cells) {
        if (c.failed > 0) ++failed_cells;
    }
    std::printf("%zu cells (%d scenarios x %zu engines x %zu rewards), %d with failed clips, "
                "%.1f s\n",
                result.cells.size(),
                static_cast<int>(cmp.scenarios.empty()
                                     ? scenario::Registry::instance().names().size()
                                     : cmp.scenarios.size()),
                cmp.engines.size(), cmp.rewards.size(), failed_cells, result.wall_s);

    try {
        if (!json_path.empty()) {
            write_text_atomic(json_path, result.to_json(true));
            std::printf("wrote %s\n", json_path.c_str());
        }
        if (!write_golden_path.empty()) {
            write_text_atomic(write_golden_path, scenario::bounds_json(result, slack));
            std::printf("wrote %s (rel slack %.0f%%)\n", write_golden_path.c_str(),
                        100.0 * slack);
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "write failed: %s\n", e.what());
        return 1;
    }

    int rc = failed_cells > 0 ? 1 : 0;
    if (!golden_path.empty()) {
        try {
            const std::vector<scenario::CellBound> bounds =
                scenario::read_bounds(read_text(golden_path));
            const std::vector<std::string> violations = scenario::check_bounds(result, bounds);
            if (violations.empty()) {
                std::printf("golden gate: %zu bounded cells OK (%s)\n", bounds.size(),
                            golden_path.c_str());
            } else {
                for (const std::string& viol : violations) {
                    std::fprintf(stderr, "golden gate: %s\n", viol.c_str());
                }
                rc = 1;
            }
        } catch (const std::exception& e) {
            std::fprintf(stderr, "golden gate: %s\n", e.what());
            rc = 1;
        }
    }
    write_obs_reports(obs);
    return rc;
}

// ------------------------------------------------------- streaming commands

/// Quick-scale OPC protocol for the scenario-driven streaming paths (same
/// defaults the scenario comparer runs cells with).
opc::OpcOptions scenario_opc(scenario::Style style, int iterations) {
    opc::OpcOptions opt;
    opt.max_iterations = iterations > 0 ? iterations : 5;
    opt.initial_bias_nm = style == scenario::Style::kVia ? 3 : 0;
    return opt;
}

/// Tiny deterministic in-memory CAMO policy for serve/shard: the comparer's
/// imitation-only recipe, trained once up front and shared read-only across
/// every tile and request of the run — the warm policy cache of the service.
std::shared_ptr<core::CamoEngine> warm_camo_engine(scenario::Style style,
                                                   const litho::LithoConfig& litho,
                                                   const opc::OpcOptions& opt) {
    core::CamoConfig cfg;
    cfg.name = "stream";
    cfg.seed = 7;
    cfg.teacher_biases = {3, 0};
    cfg.teacher_steps = 3;
    cfg.phase1_epochs = 4;
    cfg.phase2_episodes = 0;
    cfg.train_workers = 1;
    auto engine = std::make_shared<core::CamoEngine>(cfg);

    std::vector<layout::Clip> clips;
    for (int i = 0; i < 2; ++i) {
        Rng rng(derive_seed(0xC0FFEEULL, static_cast<std::uint64_t>(i)));
        layout::Clip clip;
        clip.name = "stream_train_" + std::to_string(i);
        clip.clip_nm = 1000;
        if (style == scenario::Style::kVia) {
            layout::ViaGenOptions vg;
            vg.clip_nm = 1000;
            vg.margin_nm = 200;
            vg.min_spacing_nm = 120;
            clip.targets = layout::generate_via_clip(2 + i % 3, rng, vg);
        } else {
            layout::MetalGenOptions mg;
            mg.clip_nm = 1000;
            clip.targets = layout::generate_metal_clip(24, rng, mg);
        }
        clips.push_back(std::move(clip));
    }
    const std::vector<geo::SegmentedLayout> layouts =
        style == scenario::Style::kVia ? core::fragment_via_clips(clips)
                                       : core::fragment_metal_clips(clips);
    litho::LithoSim sim(litho);
    engine->train(layouts, sim, opt);
    return engine;
}

/// Per-clip optimizer for the streaming paths: a fresh RuleEngine per job,
/// or one warm CamoEngine snapshot inferred concurrently.
runtime::ClipOptimizer make_optimizer(const std::string& engine, scenario::Style style,
                                      const litho::LithoConfig& litho,
                                      const opc::OpcOptions& opt) {
    if (engine == "rule") {
        return [](const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                  const opc::OpcOptions& o, std::uint64_t /*job_seed*/) {
            opc::RuleEngine eng;
            return eng.optimize(layout, sim, o);
        };
    }
    const std::shared_ptr<core::CamoEngine> eng = warm_camo_engine(style, litho, opt);
    return [eng](const geo::SegmentedLayout& layout, litho::LithoSim& sim,
                 const opc::OpcOptions& o,
                 std::uint64_t /*job_seed*/) { return eng->infer(layout, sim, o); };
}

int chipgen_main(int argc, char** argv) {
    std::string out;
    std::string scenario_name = "via3";
    int cols = 3;
    int rows = 3;
    int pitch = 0;
    bool parse_ok = true;
    for (int i = 2; i < argc && parse_ok; ++i) {
        const std::string a = argv[i];
        auto next = [&](std::string& dst) {
            if (i + 1 >= argc) return false;
            dst = argv[++i];
            return true;
        };
        std::string v;
        if (a == "--out" && next(v)) {
            out = v;
        } else if (a == "--scenario" && next(v)) {
            scenario_name = v;
        } else if (a == "--cols" && next(v)) {
            parse_ok = flag_int_min("--cols", v, 1, cols);
        } else if (a == "--rows" && next(v)) {
            parse_ok = flag_int_min("--rows", v, 1, rows);
        } else if (a == "--pitch" && next(v)) {
            parse_ok = flag_int_min("--pitch", v, 0, pitch);
        } else {
            std::fprintf(stderr, "unknown or incomplete argument: %s\n", a.c_str());
            parse_ok = false;
        }
    }
    if (!parse_ok || out.empty()) {
        std::fprintf(stderr,
                     "usage: camo_cli chipgen --out chip.gds [--scenario NAME]"
                     " [--cols N] [--rows N] [--pitch NM]\n");
        return 2;
    }

    try {
        const scenario::Scenario sc = scenario::Registry::instance().get(scenario_name);
        const std::vector<geo::Polygon> chip = scenario::chip_polygons(sc, cols, rows, pitch);
        layout::GdsLibrary lib;
        lib.name = "CAMO_CHIP";
        lib.structure = "CHIP";
        lib.layers[1] = chip;
        layout::write_gds(out, lib);
        std::printf("wrote %s: %dx%d cells of %s at %d nm pitch, %zu polygons\n", out.c_str(),
                    cols, rows, scenario_name.c_str(), pitch > 0 ? pitch : sc.clip_nm,
                    chip.size());
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "chipgen failed: %s\n", e.what());
        return 1;
    }
}

struct ShardCliOptions {
    std::string in;  ///< chip GDS; empty = generate from the scenario grid
    std::string out;
    std::string scenario = "via3";
    std::string engine = "rule";
    int layer = 1;
    int cols = 3;
    int rows = 3;
    int pitch = 0;
    int tile_nm = 512;
    int halo_nm = 256;
    int threads = 0;
    int queue_capacity = 64;
    std::uint64_t seed = core::Experiment::kDatasetSeed;
    int iterations = -1;
    bool verify = false;
    bool quiet = false;
    ObsCliOptions obs;
};

bool parse_shard_args(int argc, char** argv, ShardCliOptions& o) {
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&](std::string& dst) {
            if (i + 1 >= argc) return false;
            dst = argv[++i];
            return true;
        };
        std::string v;
        if (a == "--in" && next(v)) {
            o.in = v;
        } else if (a == "--out" && next(v)) {
            o.out = v;
        } else if (a == "--scenario" && next(v)) {
            o.scenario = v;
        } else if (a == "--engine" && next(v)) {
            o.engine = v;
        } else if (a == "--layer" && next(v)) {
            if (!flag_int_min("--layer", v, 0, o.layer)) return false;
        } else if (a == "--cols" && next(v)) {
            if (!flag_int_min("--cols", v, 1, o.cols)) return false;
        } else if (a == "--rows" && next(v)) {
            if (!flag_int_min("--rows", v, 1, o.rows)) return false;
        } else if (a == "--pitch" && next(v)) {
            if (!flag_int_min("--pitch", v, 0, o.pitch)) return false;
        } else if (a == "--tile" && next(v)) {
            if (!flag_int_min("--tile", v, 1, o.tile_nm)) return false;
        } else if (a == "--halo" && next(v)) {
            if (!flag_int_min("--halo", v, 0, o.halo_nm)) return false;
        } else if (a == "--threads" && next(v)) {
            if (!flag_int_min("--threads", v, 1, o.threads)) return false;
        } else if (a == "--queue-capacity" && next(v)) {
            if (!flag_int_min("--queue-capacity", v, 1, o.queue_capacity)) return false;
        } else if (a == "--seed" && next(v)) {
            if (!flag_u64("--seed", v, o.seed)) return false;
        } else if (a == "--iterations" && next(v)) {
            if (!flag_int_min("--iterations", v, 1, o.iterations)) return false;
        } else if (a == "--verify-monolithic") {
            o.verify = true;
        } else if (a == "--quiet") {
            o.quiet = true;
        } else if (a == "--log-level" && next(v)) {
            o.obs.log_level = v;
        } else if (a == "--metrics-json" && next(v)) {
            o.obs.metrics_json = v;
        } else if (a == "--trace" && next(v)) {
            o.obs.trace = v;
        } else {
            std::fprintf(stderr, "unknown or incomplete argument: %s\n", a.c_str());
            return false;
        }
    }
    if (o.engine != "rule" && o.engine != "camo") {
        std::fprintf(stderr, "--engine: expected rule or camo, got '%s'\n", o.engine.c_str());
        return false;
    }
    return true;
}

int shard_main(int argc, char** argv) {
    ShardCliOptions cli;
    if (!parse_shard_args(argc, argv, cli)) {
        std::fprintf(stderr,
                     "usage: camo_cli shard [--in chip.gds [--layer N] | --scenario NAME"
                     " --cols N --rows N [--pitch NM]] [--tile NM] [--halo NM]"
                     " [--engine rule|camo] [--threads N] [--queue-capacity N] [--seed S]"
                     " [--iterations N] [--out mask.gds] [--verify-monolithic] [--quiet]"
                     " [--log-level quiet|info|debug] [--metrics-json PATH] [--trace PATH]\n");
        return 2;
    }
    if (!apply_obs_options(cli.obs, cli.quiet)) return 2;

    try {
        const scenario::Scenario sc = scenario::Registry::instance().get(cli.scenario);

        std::vector<geo::Polygon> chip;
        if (cli.in.empty()) {
            chip = scenario::chip_polygons(sc, cli.cols, cli.rows, cli.pitch);
        } else {
            layout::GdsLibrary lib = layout::read_gds(cli.in);
            chip = std::move(lib.layers[cli.layer]);
            if (chip.empty()) {
                std::fprintf(stderr, "no polygons on layer %d in %s\n", cli.layer,
                             cli.in.c_str());
                return 1;
            }
        }

        layout::ShardOptions sopt;
        sopt.tile_nm = cli.tile_nm;
        sopt.halo_nm = cli.halo_nm;
        sopt.fragment = {sc.style == scenario::Style::kVia ? geo::FragmentStyle::kVia
                                                           : geo::FragmentStyle::kMetal,
                         60};
        if (sc.style == scenario::Style::kVia) {
            sopt.sraf_gen = [](const std::vector<geo::Polygon>& targets) {
                return opc::insert_srafs(targets);
            };
        }
        const layout::TileSharder sharder(std::move(chip), std::move(sopt), sc.litho);
        if (sharder.tiles().empty()) {
            std::printf("empty chip: nothing to shard\n");
            return 0;
        }

        const opc::OpcOptions opt = scenario_opc(sc.style, cli.iterations);
        const runtime::ClipOptimizer optimize =
            make_optimizer(cli.engine, sc.style, sc.litho, opt);
        const std::vector<geo::SegmentedLayout> layouts = sharder.tile_layouts();
        const std::vector<std::string> names = sharder.tile_names();
        const geo::SegmentedLayout chip_layout = sharder.chip_layout();

        runtime::BatchOptions bopt;
        bopt.threads = cli.threads;
        bopt.seed = cli.seed;
        bopt.opc = opt;
        runtime::StreamOptions stream;
        stream.queue_capacity = cli.queue_capacity;

        int stream_failed = 0;
        const auto run_stitched = [&](int threads, runtime::StreamStats* stats_out) {
            runtime::BatchOptions b = bopt;
            b.threads = threads;
            runtime::BatchScheduler sched(sc.litho, b);
            std::vector<std::vector<int>> tile_offsets(layouts.size());
            const runtime::StreamStats stats = sched.run_streaming(
                layouts, optimize,
                [&tile_offsets](runtime::ClipResult&& r) {
                    if (!r.error.empty()) {
                        std::fprintf(stderr, "tile %s FAILED: %s\n", r.name.c_str(),
                                     r.error.c_str());
                        return;  // stitch rejects the missing tile below
                    }
                    tile_offsets[static_cast<std::size_t>(r.index)] = std::move(r.offsets);
                },
                names, stream);
            if (stats_out) *stats_out = stats;
            return layout::stitch(sharder, chip_layout, tile_offsets);
        };

        runtime::StreamStats stats;
        const layout::StitchResult stitched = run_stitched(cli.threads, &stats);
        stream_failed = stats.failed;

        std::printf("shard: %zu polygons -> %zu tiles (%d nm core + %d nm halo = %d nm "
                    "window), %d owned segments\n",
                    sharder.chip().size(), sharder.tiles().size(), cli.tile_nm, cli.halo_nm,
                    sharder.options().window_nm(), sharder.total_owned_segments());
        std::printf("stream: %d tiles delivered (%d failed) in %.2fs, %lld litho evals "
                    "(%lld incremental hits)\n",
                    stats.delivered, stats.failed, stats.wall_s, stats.litho_evaluations,
                    stats.incremental_hits);

        if (!cli.out.empty()) {
            layout::GdsLibrary out;
            out.name = "CAMO_STITCHED";
            out.structure = "CHIP";
            out.layers[1] = sharder.chip();
            if (!chip_layout.srafs().empty()) out.layers[2] = chip_layout.srafs();
            out.layers[10] = stitched.mask;
            layout::write_gds(cli.out, out);
            std::printf("wrote %s (targets: layer 1, mask: layer 10)\n", cli.out.c_str());
        }

        int rc = stream_failed > 0 ? 1 : 0;
        if (cli.verify) {
            // The refactor gate: the streaming path must reproduce the
            // barrier path bit-for-bit over the same tiles, at any worker
            // count. Reference = BatchScheduler::run() (the pre-refactor
            // caller surface), candidates = run_streaming at 1/2/8 workers.
            runtime::BatchScheduler ref_sched(sc.litho, bopt);
            const runtime::BatchResult ref = ref_sched.run(layouts, optimize, names);
            std::vector<std::vector<int>> ref_offsets(layouts.size());
            for (const runtime::ClipResult& c : ref.clips) {
                if (c.error.empty()) {
                    ref_offsets[static_cast<std::size_t>(c.index)] = c.offsets;
                }
            }
            const layout::StitchResult golden =
                layout::stitch(sharder, chip_layout, ref_offsets);
            bool ok = true;
            for (const int workers : {1, 2, 8}) {
                const layout::StitchResult got = run_stitched(workers, nullptr);
                const bool match =
                    got.offsets == golden.offsets && got.mask == golden.mask;
                std::printf("verify-monolithic @ %d workers: %s\n", workers,
                            match ? "PASS (bit-identical stitch)" : "FAIL");
                ok = ok && match;
            }
            if (!ok) rc = 1;
        }
        write_obs_reports(cli.obs);
        return rc;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "shard failed: %s\n", e.what());
        return 1;
    }
}

struct ServeCliOptions {
    int requests = 6;
    int clips_per_request = 2;
    int queue_capacity = 4;
    int priority_levels = 3;
    double deadline_s = 0.0;
    std::string scenario = "via3";
    std::string engine = "rule";
    int threads = 0;
    int queue_stream = 64;  ///< worker->sink queue inside each request
    std::uint64_t seed = core::Experiment::kDatasetSeed;
    int iterations = -1;
    bool quiet = false;
    ObsCliOptions obs;
};

bool parse_serve_args(int argc, char** argv, ServeCliOptions& o) {
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&](std::string& dst) {
            if (i + 1 >= argc) return false;
            dst = argv[++i];
            return true;
        };
        std::string v;
        if (a == "--requests" && next(v)) {
            if (!flag_int_min("--requests", v, 0, o.requests)) return false;
        } else if (a == "--clips" && next(v)) {
            if (!flag_int_min("--clips", v, 1, o.clips_per_request)) return false;
        } else if (a == "--queue-capacity" && next(v)) {
            if (!flag_int_min("--queue-capacity", v, 1, o.queue_capacity)) return false;
        } else if (a == "--priority-levels" && next(v)) {
            if (!flag_int_min("--priority-levels", v, 1, o.priority_levels)) return false;
        } else if (a == "--deadline-s" && next(v)) {
            if (!flag_double_min("--deadline-s", v, 0.0, o.deadline_s)) return false;
        } else if (a == "--scenario" && next(v)) {
            o.scenario = v;
        } else if (a == "--engine" && next(v)) {
            o.engine = v;
        } else if (a == "--threads" && next(v)) {
            if (!flag_int_min("--threads", v, 1, o.threads)) return false;
        } else if (a == "--stream-queue" && next(v)) {
            if (!flag_int_min("--stream-queue", v, 1, o.queue_stream)) return false;
        } else if (a == "--seed" && next(v)) {
            if (!flag_u64("--seed", v, o.seed)) return false;
        } else if (a == "--iterations" && next(v)) {
            if (!flag_int_min("--iterations", v, 1, o.iterations)) return false;
        } else if (a == "--quiet") {
            o.quiet = true;
        } else if (a == "--log-level" && next(v)) {
            o.obs.log_level = v;
        } else if (a == "--metrics-json" && next(v)) {
            o.obs.metrics_json = v;
        } else if (a == "--trace" && next(v)) {
            o.obs.trace = v;
        } else {
            std::fprintf(stderr, "unknown or incomplete argument: %s\n", a.c_str());
            return false;
        }
    }
    if (o.engine != "rule" && o.engine != "camo") {
        std::fprintf(stderr, "--engine: expected rule or camo, got '%s'\n", o.engine.c_str());
        return false;
    }
    return true;
}

int serve_main(int argc, char** argv) {
    ServeCliOptions cli;
    if (!parse_serve_args(argc, argv, cli)) {
        std::fprintf(stderr,
                     "usage: camo_cli serve [--requests N] [--clips N] [--queue-capacity N]"
                     " [--priority-levels N] [--deadline-s X] [--scenario NAME]"
                     " [--engine rule|camo] [--threads N] [--stream-queue N] [--seed S]"
                     " [--iterations N] [--quiet] [--log-level quiet|info|debug]"
                     " [--metrics-json PATH] [--trace PATH]\n");
        return 2;
    }
    if (!apply_obs_options(cli.obs, cli.quiet)) return 2;

    try {
        const scenario::Scenario sc = scenario::Registry::instance().get(cli.scenario);
        const opc::OpcOptions opt = scenario_opc(sc.style, cli.iterations);

        service::ServerOptions sopt;
        sopt.queue_capacity = cli.queue_capacity;
        sopt.batch.threads = cli.threads;
        sopt.batch.seed = cli.seed;
        sopt.batch.opc = opt;
        sopt.stream.queue_capacity = cli.queue_stream;
        service::OpcServer server(sc.litho, sopt);

        const int total = cli.requests * cli.clips_per_request;
        const std::vector<layout::Clip> raw = sc.clips(total);
        const std::vector<geo::SegmentedLayout> lays = sc.layouts(total);

        for (int j = 0; j < cli.requests; ++j) {
            service::ServeRequest req;
            req.name = "req" + std::to_string(j);
            req.priority = j % cli.priority_levels;
            req.deadline_s = cli.deadline_s;
            const int begin = j * cli.clips_per_request;
            for (int k = 0; k < cli.clips_per_request; ++k) {
                req.clips.push_back(lays[static_cast<std::size_t>(begin + k)]);
                req.clip_names.push_back(raw[static_cast<std::size_t>(begin + k)].name);
            }
            server.submit(std::move(req));
        }

        const runtime::ClipOptimizer optimize =
            make_optimizer(cli.engine, sc.style, sc.litho, opt);
        const std::vector<service::RequestOutcome> outcomes = server.drain(optimize);

        int accepted = 0;
        int rejected = 0;
        int completed = 0;
        int failed = 0;
        int deadline_missed = 0;
        for (const service::RequestOutcome& out : outcomes) {
            if (!out.accepted) {
                ++rejected;
                std::printf("%-6s p%-2d REJECTED: %s\n", out.name.c_str(), out.priority,
                            out.reject_reason.c_str());
                continue;
            }
            ++accepted;
            const bool request_error = !out.reject_reason.empty();
            if (request_error || out.failed > 0) {
                ++failed;
            } else {
                ++completed;
            }
            if (out.deadline_missed) ++deadline_missed;
            std::printf("%-6s p%-2d served #%d: %d clips (%d failed), wait %.3fs, "
                        "service %.2fs, latency %.2fs, sum|EPE| %.1f nm%s%s%s\n",
                        out.name.c_str(), out.priority, out.served_order, out.clips,
                        out.failed, out.queue_wait_s, out.service_s, out.latency_s,
                        out.sum_final_epe, out.deadline_missed ? " [DEADLINE MISSED]" : "",
                        request_error ? " [" : "",
                        request_error ? (out.reject_reason + "]").c_str() : "");
        }
        std::printf("serve: %d requests, %d accepted, %d rejected, %d completed, %d failed, "
                    "%d deadline-missed\n",
                    static_cast<int>(outcomes.size()), accepted, rejected, completed, failed,
                    deadline_missed);
        write_obs_reports(cli.obs);
        return failed == 0 ? 0 : 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "serve failed: %s\n", e.what());
        return 1;
    }
}

// ---- collect / train: trajectory-store workflow -----------------------------
// collect records rule-teacher trajectories (plus their squish-encoded
// states) into a packed trajectory store; train replays phase-1 imitation
// minibatches straight from the store's memory mapping and writes the
// trained policy weights. The split lets N machines collect and one train;
// `train --in-memory` runs the classic collect-and-train path with the same
// configuration, so CI can byte-compare the two weight files.

struct StoreCliOptions {
    std::string style = "via";
    int clips = 0;  // 0 = the style's full training set
    int train_workers = 1;
    int epochs = 0;  // 0 = config default (train only)
    std::uint64_t seed = core::Experiment::kDatasetSeed;
    std::string store_path;  ///< collect --out / train --from-store
    std::string weights;     ///< train --weights
    std::string stats_json;
    bool in_memory = false;  ///< train: collect in-process instead of replaying
    bool quiet = false;
    ObsCliOptions obs;
};

/// Provenance hash of the clip set a store was collected on. Derived from
/// everything build_store_clips depends on (plus the squish size, which
/// fixes the feature shape) so replaying against differently-built clips
/// fails loudly instead of training on mismatched data.
std::uint64_t store_dataset_tag(const std::string& style, std::uint64_t seed, int clip_cap,
                                int squish_size) {
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix_byte = [&](std::uint8_t b) {
        h ^= b;
        h *= 1099511628211ULL;
    };
    const auto mix_u64 = [&](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) mix_byte(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    for (char c : style) mix_byte(static_cast<std::uint8_t>(c));
    mix_u64(seed);
    mix_u64(static_cast<std::uint64_t>(clip_cap));
    mix_u64(static_cast<std::uint64_t>(squish_size));
    return h;
}

/// Deterministic clip set shared by collect and train: a pure function of
/// (style, seed, cap) — never of worker counts or flag order.
std::vector<geo::SegmentedLayout> build_store_clips(const std::string& style, std::uint64_t seed,
                                                    int cap) {
    if (style == "via") {
        std::vector<layout::Clip> raw = layout::via_training_set(seed);
        if (cap > 0 && static_cast<std::size_t>(cap) < raw.size()) {
            raw.resize(static_cast<std::size_t>(cap));
        }
        return core::fragment_via_clips(raw);
    }
    std::vector<layout::Clip> raw = layout::metal_training_set(seed, cap > 0 ? cap : 8);
    if (cap > 0 && static_cast<std::size_t>(cap) < raw.size()) {
        raw.resize(static_cast<std::size_t>(cap));
    }
    return core::fragment_metal_clips(raw);
}

bool parse_store_args(int argc, char** argv, bool train_mode, StoreCliOptions& o) {
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&](std::string& dst) {
            if (i + 1 >= argc) return false;
            dst = argv[++i];
            return true;
        };
        std::string v;
        if (!train_mode && a == "--out" && next(v)) {
            o.store_path = v;
        } else if (train_mode && a == "--from-store" && next(v)) {
            o.store_path = v;
        } else if (train_mode && a == "--weights" && next(v)) {
            o.weights = v;
        } else if (train_mode && a == "--epochs" && next(v)) {
            if (!flag_int_min("--epochs", v, 1, o.epochs)) return false;
        } else if (train_mode && a == "--in-memory") {
            o.in_memory = true;
        } else if (a == "--style" && next(v)) {
            o.style = v;
        } else if (a == "--clips" && next(v)) {
            if (!flag_int_min("--clips", v, 1, o.clips)) return false;
        } else if (a == "--train-workers" && next(v)) {
            if (!flag_int("--train-workers", v, o.train_workers)) return false;
        } else if (a == "--seed" && next(v)) {
            if (!flag_u64("--seed", v, o.seed)) return false;
        } else if (a == "--stats-json" && next(v)) {
            o.stats_json = v;
        } else if (a == "--quiet") {
            o.quiet = true;
        } else if (a == "--log-level" && next(v)) {
            o.obs.log_level = v;
        } else if (a == "--metrics-json" && next(v)) {
            o.obs.metrics_json = v;
        } else if (a == "--trace" && next(v)) {
            o.obs.trace = v;
        } else {
            std::fprintf(stderr, "unknown or incomplete argument: %s\n", a.c_str());
            return false;
        }
    }
    if (o.style != "via" && o.style != "metal") {
        std::fprintf(stderr, "--style: expected via or metal, got '%s'\n", o.style.c_str());
        return false;
    }
    if (o.store_path.empty()) {
        std::fprintf(stderr, train_mode ? "train: --from-store PATH is required\n"
                                        : "collect: --out PATH is required\n");
        return false;
    }
    if (train_mode && o.weights.empty()) {
        std::fprintf(stderr, "train: --weights PATH is required\n");
        return false;
    }
    return true;
}

void print_collect_usage() {
    std::fprintf(stderr,
                 "usage: camo_cli collect --out store.ctrj [--style via|metal] [--clips N]\n"
                 "                [--train-workers N] [--seed S] [--stats-json PATH]\n"
                 "                [--quiet] [--log-level L] [--metrics-json PATH]"
                 " [--trace PATH]\n");
}

void print_train_usage() {
    std::fprintf(stderr,
                 "usage: camo_cli train --from-store store.ctrj --weights out.bin\n"
                 "                [--style via|metal] [--clips N] [--epochs N]\n"
                 "                [--train-workers N] [--seed S] [--in-memory]\n"
                 "                [--stats-json PATH] [--quiet] [--log-level L]\n"
                 "                [--metrics-json PATH] [--trace PATH]\n");
}

int collect_main(int argc, char** argv) {
    StoreCliOptions cli;
    if (!parse_store_args(argc, argv, /*train_mode=*/false, cli)) {
        print_collect_usage();
        return 2;
    }
    if (!apply_obs_options(cli.obs, cli.quiet)) return 2;
    try {
        core::CamoConfig cfg =
            cli.style == "via" ? core::Experiment::via_camo_config()
                               : core::Experiment::metal_camo_config();
        cfg.train_workers = cli.train_workers;
        const auto clips = build_store_clips(cli.style, cli.seed, cli.clips);
        const std::uint64_t tag =
            store_dataset_tag(cli.style, cli.seed, cli.clips, cfg.squish.size);

        litho::LithoSim sim(core::Experiment::litho_config());
        const opc::OpcOptions opt = cli.style == "via" ? core::Experiment::via_options()
                                                       : core::Experiment::metal_options();
        core::CamoEngine engine(cfg);
        rl::TrajStoreWriter writer(cli.store_path, tag);
        Timer timer;
        engine.collect_teacher_data(clips, sim, opt, &writer);
        const double dedupe_rate =
            writer.steps() == 0
                ? 0.0
                : static_cast<double>(writer.dedupe_hits()) / static_cast<double>(writer.steps());
        std::printf("collect: %llu trajectories, %llu steps, %llu states "
                    "(%.0f%% deduped), %llu bytes -> %s (%.1fs)\n",
                    static_cast<unsigned long long>(writer.trajectories()),
                    static_cast<unsigned long long>(writer.steps()),
                    static_cast<unsigned long long>(writer.states()), 100.0 * dedupe_rate,
                    static_cast<unsigned long long>(writer.byte_size()), cli.store_path.c_str(),
                    timer.seconds());
        if (!cli.stats_json.empty()) {
            std::string json = "{\n";
            json += "  \"trajectories\": " + std::to_string(writer.trajectories()) + ",\n";
            json += "  \"steps\": " + std::to_string(writer.steps()) + ",\n";
            json += "  \"states\": " + std::to_string(writer.states()) + ",\n";
            json += "  \"dedupe_hits\": " + std::to_string(writer.dedupe_hits()) + ",\n";
            json += "  \"dedupe_rate\": " + std::to_string(dedupe_rate) + ",\n";
            json += "  \"bytes\": " + std::to_string(writer.byte_size()) + ",\n";
            json += "  \"clips\": " + std::to_string(clips.size()) + ",\n";
            json += "  \"dataset_tag\": " + std::to_string(tag) + "\n}\n";
            write_text_atomic(cli.stats_json, json);
        }
        write_obs_reports(cli.obs);
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "collect failed: %s\n", e.what());
        return 1;
    }
}

int train_main(int argc, char** argv) {
    StoreCliOptions cli;
    if (!parse_store_args(argc, argv, /*train_mode=*/true, cli)) {
        print_train_usage();
        return 2;
    }
    if (!apply_obs_options(cli.obs, cli.quiet)) return 2;
    try {
        core::CamoConfig cfg =
            cli.style == "via" ? core::Experiment::via_camo_config()
                               : core::Experiment::metal_camo_config();
        cfg.train_workers = cli.train_workers;
        const int epochs = cli.epochs > 0 ? cli.epochs : cfg.phase1_epochs;
        const std::uint64_t tag =
            store_dataset_tag(cli.style, cli.seed, cli.clips, cfg.squish.size);

        // Open the store before any expensive setup so a bad path or a torn
        // file fails in milliseconds, not after clip generation.
        std::unique_ptr<rl::TrajStoreReader> store;
        if (!cli.in_memory) {
            store = std::make_unique<rl::TrajStoreReader>(cli.store_path);
            if (store->dataset_tag() != tag) {
                std::fprintf(stderr,
                             "train: store %s was collected on a different dataset "
                             "(tag %llu, expected %llu for --style %s --seed %llu --clips %d)\n",
                             cli.store_path.c_str(),
                             static_cast<unsigned long long>(store->dataset_tag()),
                             static_cast<unsigned long long>(tag), cli.style.c_str(),
                             static_cast<unsigned long long>(cli.seed), cli.clips);
                return 1;
            }
        }

        const auto clips = build_store_clips(cli.style, cli.seed, cli.clips);
        core::CamoEngine engine(cfg);
        Timer timer;
        double loss = 0.0;
        if (cli.in_memory) {
            litho::LithoSim sim(core::Experiment::litho_config());
            const opc::OpcOptions opt = cli.style == "via" ? core::Experiment::via_options()
                                                           : core::Experiment::metal_options();
            const core::Phase1Dataset data = engine.collect_teacher_data(clips, sim, opt);
            for (int e = 0; e < epochs; ++e) loss = engine.run_phase1_epoch(data);
        } else {
            // Replay path: no lithography simulator at all — training cost is
            // pure policy forward/backward over the mapped store.
            const core::Phase1Replay replay = engine.make_phase1_replay(*store, clips);
            for (int e = 0; e < epochs; ++e) loss = engine.run_phase1_epoch(replay);
        }
        engine.save_weights(cli.weights);
        std::printf("train: %d epochs over %llu steps (%s), final loss %.6f -> %s (%.1fs)\n",
                    epochs,
                    static_cast<unsigned long long>(store ? store->step_count() : 0ULL),
                    cli.in_memory ? "in-memory" : "store replay", loss, cli.weights.c_str(),
                    timer.seconds());
        if (!cli.stats_json.empty()) {
            std::string json = "{\n";
            json += "  \"epochs\": " + std::to_string(epochs) + ",\n";
            json += "  \"steps\": " +
                    std::to_string(store ? store->step_count() : 0ULL) + ",\n";
            json += "  \"mode\": \"" + std::string(cli.in_memory ? "in-memory" : "replay") +
                    "\",\n";
            json += "  \"final_loss\": " + std::to_string(loss) + "\n}\n";
            write_text_atomic(cli.stats_json, json);
        }
        write_obs_reports(cli.obs);
        return 0;
    } catch (const rl::TrajStoreError& e) {
        std::fprintf(stderr, "train: %s\n", e.what());
        return 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "train failed: %s\n", e.what());
        return 1;
    }
}

void print_usage() {
    std::fprintf(stderr,
                 "usage: camo_cli <subcommand> [options] | camo_cli --in ... --out ...\n"
                 "subcommands:\n"
                 "  batch     parallel batch OPC over a generated clip stream\n"
                 "  sweep     batch + multi-corner process-window evaluation\n"
                 "  compare   scenario-matrix quality gate (ranked engine x scenario\n"
                 "            x reward table, golden regression bounds)\n"
                 "  chipgen   write a synthetic multi-tile chip GDS from a scenario grid\n"
                 "  shard     full-chip OPC: cut into halo-padded tiles, stream-optimize,\n"
                 "            stitch (--verify-monolithic checks the barrier path bitwise)\n"
                 "  serve     long-running service loop: queued requests with priority,\n"
                 "            deadlines and admission control over a warm scheduler\n"
                 "  collect   record rule-teacher trajectories into a packed store\n"
                 "  train     replay phase-1 training from a store and write weights\n"
                 "  --list-scenarios   print the registered scenarios\n"
                 "(no subcommand: single-clip GDSII mode; see --in/--out usage)\n");
}

}  // namespace

int main(int argc, char** argv) {
    if (argc > 1 && std::strcmp(argv[1], "batch") == 0) return batch_main(argc, argv, false);
    if (argc > 1 && std::strcmp(argv[1], "sweep") == 0) return batch_main(argc, argv, true);
    if (argc > 1 && std::strcmp(argv[1], "compare") == 0) return compare_main(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "chipgen") == 0) return chipgen_main(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "shard") == 0) return shard_main(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "serve") == 0) return serve_main(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "collect") == 0) return collect_main(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "train") == 0) return train_main(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "--list-scenarios") == 0) {
        print_scenarios();
        return 0;
    }
    if (argc > 1 && (std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0)) {
        print_usage();
        return 0;
    }
    if (argc > 1 && argv[1][0] != '-') {
        std::fprintf(stderr, "unknown subcommand: %s\n", argv[1]);
        print_usage();
        return 2;
    }
    if (argc <= 1) {
        print_usage();
        return 2;
    }

    CliOptions cli;
    if (!parse_args(argc, argv, cli)) {
        std::fprintf(stderr,
                     "usage: camo_cli --in layout.gds --out result.gds"
                     " [--engine rule|oneshot|camo] [--style via|metal] [--layer N]"
                     " [--clip N] [--iterations N] [--train-workers N]"
                     " [--reward-mode nominal|worst|weighted] [--window] [--quiet]"
                     " [--log-level quiet|info|debug] [--metrics-json PATH] [--trace PATH]\n");
        return 2;
    }
    if (!apply_obs_options(cli.obs, cli.quiet)) return 2;

    // Load targets.
    layout::GdsLibrary lib;
    try {
        lib = layout::read_gds(cli.in);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error reading %s: %s\n", cli.in.c_str(), e.what());
        return 1;
    }
    if (lib.layers.count(cli.layer) == 0 || lib.layers[cli.layer].empty()) {
        std::fprintf(stderr, "no polygons on layer %d in %s\n", cli.layer, cli.in.c_str());
        return 1;
    }
    const std::vector<geo::Polygon>& targets = lib.layers[cli.layer];

    // Fragment.
    const bool via_style = cli.style == "via";
    std::vector<geo::Polygon> srafs;
    if (via_style) srafs = opc::insert_srafs(targets);
    geo::SegmentedLayout layout(
        targets,
        {via_style ? geo::FragmentStyle::kVia : geo::FragmentStyle::kMetal, 60}, srafs,
        cli.clip_nm);

    litho::LithoSim sim(core::Experiment::litho_config());
    opc::OpcOptions opt =
        via_style ? core::Experiment::via_options() : core::Experiment::metal_options();
    if (cli.iterations > 0) opt.max_iterations = cli.iterations;
    opt.objective = cli.reward_mode;

    // Select and run the engine.
    opc::EngineResult res;
    if (cli.engine == "rule") {
        opc::RuleEngine engine;
        res = engine.optimize(layout, sim, opt);
    } else if (cli.engine == "oneshot") {
        opc::OneShotEngine engine;
        res = engine.optimize(layout, sim, opt);
    } else if (cli.engine == "camo") {
        core::CamoConfig cfg = via_style ? core::Experiment::via_camo_config()
                                         : core::Experiment::metal_camo_config();
        cfg.train_workers = cli.train_workers;
        core::CamoEngine engine(cfg);
        const std::string tag = via_style ? "via" : "metal";
        const auto train =
            via_style
                ? core::fragment_via_clips(
                      layout::via_training_set(core::Experiment::kDatasetSeed))
                : core::fragment_metal_clips(
                      layout::metal_training_set(core::Experiment::kDatasetSeed, 5));
        core::ensure_trained(engine, train, sim, opt,
                             core::Experiment::weights_path(cfg, tag, cli.reward_mode));
        res = engine.optimize(layout, sim, opt);
    } else {
        std::fprintf(stderr, "unknown engine: %s\n", cli.engine.c_str());
        return 2;
    }

    std::printf("%d segments, %d iterations: sum|EPE| %.1f -> %.1f nm, PVB %.0f nm^2, %.2f s\n",
                layout.num_segments(), res.iterations, res.epe_history.front(),
                res.final_metrics.sum_abs_epe, res.final_metrics.pvband_nm2, res.runtime_s);
    if (cli.window || cli.reward_mode != rl::RewardMode::kNominal) {
        // Window-objective runs carry the final sweep for free; a plain
        // --window run sweeps the final mask at the standard window.
        const litho::WindowMetrics w =
            res.final_window ? *res.final_window
                             : sim.evaluate_window(layout, res.final_offsets,
                                                   litho::WindowSpec::standard(sim.config()));
        std::printf("window (%s reward): worst|EPE| %.1f nm, exact PVB %.0f nm^2, "
                    "CD range %.0f nm^2\n",
                    rl::reward_mode_name(cli.reward_mode), w.worst_epe, w.pv_band_exact_nm2,
                    w.cd_range_nm2());
    }

    layout::GdsLibrary out;
    out.name = "CAMO_OPC";
    out.layers[1] = targets;
    if (!layout.srafs().empty()) out.layers[2] = layout.srafs();
    out.layers[10] = layout.reconstruct_mask(res.final_offsets);
    layout::write_gds(cli.out, out);
    std::printf("wrote %s (targets: layer 1%s, mask: layer 10)\n", cli.out.c_str(),
                layout.srafs().empty() ? "" : ", SRAFs: layer 2");
    write_obs_reports(cli.obs);
    return 0;
}
