// Writes the generated benchmark suites (via training + test sets, metal
// test set) as GDSII files under data/benchmarks/, so the exact layouts
// behind the tables can be inspected in any layout viewer or fed to other
// OPC tools via camo_cli.
#include <cstdio>
#include <filesystem>

#include "core/experiment.hpp"
#include "layout/gdsii.hpp"
#include "opc/sraf.hpp"

namespace {

using namespace camo;

void export_set(const std::vector<layout::Clip>& clips, const std::string& dir,
                bool with_srafs) {
    std::filesystem::create_directories(dir);
    for (const layout::Clip& c : clips) {
        layout::GdsLibrary lib;
        lib.name = "CAMO_BENCH";
        lib.structure = c.name;
        lib.layers[1] = c.targets;
        if (with_srafs) lib.layers[2] = opc::insert_srafs(c.targets);
        const std::string path = dir + "/" + c.name + ".gds";
        layout::write_gds(path, lib);
        std::printf("  %s (%zu polygons)\n", path.c_str(), c.targets.size());
    }
}

}  // namespace

int main() {
    const auto seed = core::Experiment::kDatasetSeed;
    std::printf("via training set:\n");
    export_set(layout::via_training_set(seed), "data/benchmarks/via_train", true);
    std::printf("via test set (V1..V13):\n");
    export_set(layout::via_test_set(seed), "data/benchmarks/via_test", true);
    std::printf("metal test set (M1..M10):\n");
    export_set(layout::metal_test_set(seed), "data/benchmarks/metal_test", false);
    std::printf("done.\n");
    return 0;
}
