// Pre-trains the CAMO and RL-OPC policies for both layers and stores the
// weights under data/. The benchmark binaries load these caches; run this
// tool (or any table bench) once after changing training configuration.
//
//   pretrain [--train-workers N]
//
// --train-workers selects the data-parallel training runtime width
// (<= 0 = all hardware threads). The trained weights are bit-identical at
// any value — the flag only changes wall time — which is why the cache path
// does not encode it.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.hpp"
#include "common/timer.hpp"
#include "core/experiment.hpp"

namespace {

using namespace camo;

void train_one(core::CamoConfig cfg, int train_workers, const std::string& tag,
               const std::vector<geo::SegmentedLayout>& clips, litho::LithoSim& sim,
               const opc::OpcOptions& opt) {
    Timer timer;
    cfg.train_workers = train_workers;
    core::CamoEngine engine(cfg);
    const std::string path = core::Experiment::weights_path(cfg, tag);
    const bool cached = core::ensure_trained(engine, clips, sim, opt, path);
    std::printf("%-12s %-6s %-7s %6.1fs -> %s\n", cfg.name.c_str(), tag.c_str(),
                cached ? "cached" : "trained", timer.seconds(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
    int train_workers = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--train-workers") == 0 && i + 1 < argc) {
            train_workers = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr, "usage: pretrain [--train-workers N]\n");
            return 2;
        }
    }

    set_log_level(LogLevel::kInfo);
    litho::LithoSim sim(core::Experiment::litho_config());

    const auto via_train = core::fragment_via_clips(
        layout::via_training_set(core::Experiment::kDatasetSeed));
    const auto metal_train = core::fragment_metal_clips(
        layout::metal_training_set(core::Experiment::kDatasetSeed, 5));

    train_one(core::Experiment::via_camo_config(), train_workers, "via", via_train, sim,
              core::Experiment::via_options());
    train_one(core::Experiment::via_rlopc_config(), train_workers, "via", via_train, sim,
              core::Experiment::via_options());
    train_one(core::Experiment::metal_camo_config(), train_workers, "metal", metal_train, sim,
              core::Experiment::metal_options());
    train_one(core::Experiment::metal_rlopc_config(), train_workers, "metal", metal_train, sim,
              core::Experiment::metal_options());
    return 0;
}
