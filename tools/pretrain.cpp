// Pre-trains the CAMO and RL-OPC policies for both layers and stores the
// weights under data/. The benchmark binaries load these caches; run this
// tool (or any table bench) once after changing training configuration.
//
//   pretrain [--train-workers N] [--log-level quiet|info|debug]
//            [--metrics-json PATH] [--trace PATH]
//
// --train-workers selects the data-parallel training runtime width
// (<= 0 = all hardware threads). The trained weights are bit-identical at
// any value — the flag only changes wall time — which is why the cache path
// does not encode it. --metrics-json / --trace enable the telemetry layer
// (observational only: weights stay bit-identical) and write the registry
// snapshot / Chrome trace on exit.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.hpp"
#include "common/parse.hpp"
#include "common/timer.hpp"
#include "core/experiment.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace {

using namespace camo;

void train_one(core::CamoConfig cfg, int train_workers, const std::string& tag,
               const std::vector<geo::SegmentedLayout>& clips, litho::LithoSim& sim,
               const opc::OpcOptions& opt) {
    Timer timer;
    cfg.train_workers = train_workers;
    core::CamoEngine engine(cfg);
    const std::string path = core::Experiment::weights_path(cfg, tag);
    const bool cached = core::ensure_trained(engine, clips, sim, opt, path);
    std::printf("%-12s %-6s %-7s %6.1fs -> %s\n", cfg.name.c_str(), tag.c_str(),
                cached ? "cached" : "trained", timer.seconds(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
    int train_workers = 1;
    std::string metrics_json;
    std::string trace;
    LogLevel level = LogLevel::kInfo;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--train-workers") == 0 && i + 1 < argc) {
            // Checked parse: atoi would turn garbage into 0 (= all hardware
            // threads) and silently over-subscribe the machine.
            const std::string v = argv[++i];
            if (!camo::parse_int(v, train_workers)) {
                std::fprintf(stderr, "--train-workers: expected an integer, got '%s'\n",
                             v.c_str());
                return 2;
            }
        } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
            metrics_json = argv[++i];
        } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace = argv[++i];
        } else if (std::strcmp(argv[i], "--log-level") == 0 && i + 1 < argc) {
            const std::string v = argv[++i];
            if (v == "quiet") {
                level = LogLevel::kQuiet;
            } else if (v == "info") {
                level = LogLevel::kInfo;
            } else if (v == "debug") {
                level = LogLevel::kDebug;
            } else {
                std::fprintf(stderr, "unknown log level: %s\n", v.c_str());
                return 2;
            }
        } else {
            std::fprintf(stderr,
                         "usage: pretrain [--train-workers N]"
                         " [--log-level quiet|info|debug]"
                         " [--metrics-json PATH] [--trace PATH]\n");
            return 2;
        }
    }

    set_log_level(level);
    if (!metrics_json.empty()) obs::set_metrics_enabled(true);
    if (!trace.empty()) obs::set_tracing_enabled(true);
    litho::LithoSim sim(core::Experiment::litho_config());

    const auto via_train = core::fragment_via_clips(
        layout::via_training_set(core::Experiment::kDatasetSeed));
    const auto metal_train = core::fragment_metal_clips(
        layout::metal_training_set(core::Experiment::kDatasetSeed, 5));

    train_one(core::Experiment::via_camo_config(), train_workers, "via", via_train, sim,
              core::Experiment::via_options());
    train_one(core::Experiment::via_rlopc_config(), train_workers, "via", via_train, sim,
              core::Experiment::via_options());
    train_one(core::Experiment::metal_camo_config(), train_workers, "metal", metal_train, sim,
              core::Experiment::metal_options());
    train_one(core::Experiment::metal_rlopc_config(), train_workers, "metal", metal_train, sim,
              core::Experiment::metal_options());

    if (!metrics_json.empty()) obs::write_metrics_json(metrics_json);
    if (!trace.empty()) obs::write_trace_json(trace);
    return 0;
}
