// Batch runtime scaling: rule-engine OPC over a 32-clip via batch, swept
// from 1 thread to all hardware threads. Prints wall time, throughput,
// speedup over the 1-thread baseline, and verifies that per-clip offsets
// are bit-identical at every thread count (the runtime's determinism
// contract).
//
// CAMO_BENCH_FULL=1 switches to the production 512-grid lithography model;
// the default uses the quick 256 grid so the sweep finishes in seconds.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/experiment.hpp"
#include "layout/via_gen.hpp"
#include "runtime/batch.hpp"

namespace {

using namespace camo;

litho::LithoConfig bench_litho_config() {
    litho::LithoConfig cfg = core::Experiment::litho_config();
    if (!core::Experiment::full_scale()) {
        cfg.grid = 256;
        cfg.kernels_nominal = 6;
        cfg.kernels_defocus = 5;
    }
    return cfg;
}

}  // namespace

int main() {
    constexpr int kClips = 32;
    const litho::LithoConfig litho_cfg = bench_litho_config();

    const std::vector<layout::Clip> raw =
        layout::via_batch_set(core::Experiment::kDatasetSeed, kClips);
    const std::vector<geo::SegmentedLayout> clips = core::fragment_via_clips(raw);

    // Warm the shared kernel registry so the first sweep row does not pay
    // the one-time kernel build.
    { litho::LithoSim warmup(litho_cfg); }

    std::vector<int> thread_counts{1, 2, 4};
    const int hw = runtime::ThreadPool::default_threads();
    if (hw > 4) thread_counts.push_back(hw);

    std::printf("batch OPC throughput: %d via clips, rule engine, grid %d\n", kClips,
                litho_cfg.grid);
    std::printf("%8s %10s %12s %10s %10s %10s\n", "threads", "wall_s", "clips/s", "speedup",
                "incr_hit", "identical");

    std::vector<runtime::BatchResult> results;
    double base_wall = 0.0;
    bool all_identical = true;
    for (int threads : thread_counts) {
        runtime::BatchOptions opt;
        opt.threads = threads;
        opt.seed = core::Experiment::kDatasetSeed;
        opt.opc = core::Experiment::via_options();

        runtime::BatchScheduler scheduler(litho_cfg, opt);
        runtime::BatchResult res = scheduler.run_rule(clips);
        if (threads == thread_counts.front()) base_wall = res.wall_s;

        bool identical = true;
        if (!results.empty()) {
            for (int c = 0; c < kClips; ++c) {
                if (res.clips[static_cast<std::size_t>(c)].offsets !=
                    results.front().clips[static_cast<std::size_t>(c)].offsets) {
                    identical = false;
                }
            }
        }
        all_identical = all_identical && identical;

        std::printf("%8d %10.2f %12.2f %9.2fx %9.0f%% %10s\n", res.threads, res.wall_s,
                    res.throughput_cps, base_wall > 0.0 ? base_wall / res.wall_s : 0.0,
                    100.0 * res.incremental_hit_rate(), identical ? "yes" : "NO");
        results.push_back(std::move(res));
    }

    for (const runtime::BatchResult& res : results) {
        if (res.failed > 0) {
            std::printf("FAILED: %d clips failed\n", res.failed);
            return 1;
        }
    }
    if (!all_identical) {
        std::printf("FAILED: results differ across thread counts\n");
        return 1;
    }
    std::printf("%s\n", results.back().summary().c_str());
    return 0;
}
