// Reproduces paper Figure 6: visualization of an OPC result on metal case
// M10 — (a) target pattern, (b) mask pattern, (c) printed contour, (d) PV
// band — written as PPM images under data/.
#include <cstdio>

#include "common/logging.hpp"
#include "core/experiment.hpp"
#include "layout/render.hpp"

int main() {
    using namespace camo;
    set_log_level(LogLevel::kInfo);

    litho::LithoSim sim(core::Experiment::litho_config());
    const opc::OpcOptions opt = core::Experiment::metal_options();

    const core::CamoConfig cfg = core::Experiment::metal_camo_config();
    core::CamoEngine camo(cfg);
    const auto train_clips = core::fragment_metal_clips(
        layout::metal_training_set(core::Experiment::kDatasetSeed, 5));
    core::ensure_trained(camo, train_clips, sim, opt,
                         core::Experiment::weights_path(cfg, "metal"));

    const auto test = layout::metal_test_set(core::Experiment::kDatasetSeed);
    const auto layouts = core::fragment_metal_clips({test[9]});  // M10
    const geo::SegmentedLayout& layout = layouts[0];

    const opc::EngineResult res = camo.optimize(layout, sim, opt);
    std::printf("M10: sum|EPE| %.1f -> %.1f nm, PVB %.0f nm^2\n", res.epe_history.front(),
                res.final_metrics.sum_abs_epe, res.final_metrics.pvband_nm2);

    const auto mask_polys = layout.reconstruct_mask(res.final_offsets);
    const geo::Raster mask = sim.rasterize(mask_polys, layout.srafs(), layout.clip_size_nm());
    const geo::Raster nominal = sim.aerial_nominal(mask);
    const geo::Raster defocus = sim.aerial_defocus(mask);
    const geo::Raster printed = sim.printed(nominal);

    // PV band image: outer corner minus inner corner.
    geo::Raster pvband(printed.n(), printed.pixel_nm());
    const geo::Raster outer = sim.printed(nominal, sim.config().dose_max);
    const geo::Raster inner = sim.printed(defocus, sim.config().dose_min);
    for (int r = 0; r < pvband.n(); ++r) {
        for (int c = 0; c < pvband.n(); ++c) {
            pvband.at(r, c) = (outer.at(r, c) > 0.5F && inner.at(r, c) < 0.5F) ? 1.0F : 0.0F;
        }
    }

    layout::Fig6Inputs in;
    in.target = layout.targets();
    in.mask = mask_polys;
    in.mask.insert(in.mask.end(), layout.srafs().begin(), layout.srafs().end());
    in.printed_nominal = printed;
    in.pvband = pvband;
    in.clip_nm = layout.clip_size_nm();
    in.offset_nm = sim.clip_offset_nm(layout.clip_size_nm());
    layout::render_fig6("data/fig6_m10", in);

    std::printf("Figure 6 panels written:\n");
    for (const char* s : {"_target.ppm", "_mask.ppm", "_contour.ppm", "_pvband.ppm"}) {
        std::printf("  data/fig6_m10%s\n", s);
    }
    return 0;
}
