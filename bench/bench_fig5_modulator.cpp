// Reproduces paper Figure 5: sum-|EPE| trajectories of CAMO on metal cases
// M2 and M4 with and without the OPC-inspired modulator, over 15 full
// optimization steps (early exit disabled so the whole trajectory is
// visible).
//
// Expected shape vs the paper: with the modulator both curves descend and
// settle; without it the policy wanders in the huge action space and the
// EPE fluctuates without converging.
#include <cstdio>

#include "common/logging.hpp"
#include "core/experiment.hpp"

int main() {
    using namespace camo;
    set_log_level(LogLevel::kInfo);

    litho::LithoSim sim(core::Experiment::litho_config());
    opc::OpcOptions opt = core::Experiment::metal_options();
    opt.exit_epe_per_point = 0.0;  // no early exit: show all 15 steps

    const core::CamoConfig cfg = core::Experiment::metal_camo_config();
    core::CamoEngine camo(cfg);
    const auto train_clips = core::fragment_metal_clips(
        layout::metal_training_set(core::Experiment::kDatasetSeed, 5));
    core::ensure_trained(camo, train_clips, sim, core::Experiment::metal_options(),
                         core::Experiment::weights_path(cfg, "metal"));

    const auto test = layout::metal_test_set(core::Experiment::kDatasetSeed);
    const auto layouts = core::fragment_metal_clips(test);

    std::printf("\n=== Figure 5: EPE trajectories with / without modulator ===\n");
    std::printf("%-5s %-18s", "step", "");
    std::printf("\n");

    struct Series {
        std::string label;
        std::vector<double> epe;
    };
    std::vector<Series> series;

    for (int case_idx : {1, 3}) {  // M2 and M4
        for (bool modulated : {true, false}) {
            camo.set_modulator_enabled(modulated);
            const opc::EngineResult r = camo.optimize(layouts[static_cast<std::size_t>(case_idx)],
                                                      sim, opt);
            series.push_back({test[static_cast<std::size_t>(case_idx)].name +
                                  (modulated ? " w. modulator" : " w.o. modulator"),
                              r.epe_history});
        }
    }
    camo.set_modulator_enabled(true);

    std::printf("%-6s", "step");
    for (const Series& s : series) std::printf(" %22s", s.label.c_str());
    std::printf("\n");
    std::size_t steps = 0;
    for (const Series& s : series) steps = std::max(steps, s.epe.size());
    for (std::size_t t = 0; t < steps; ++t) {
        std::printf("%-6zu", t);
        for (const Series& s : series) {
            if (t < s.epe.size()) {
                std::printf(" %22.1f", s.epe[t]);
            } else {
                std::printf(" %22s", "-");
            }
        }
        std::printf("\n");
    }

    // The paper's qualitative claim: the modulated runs end lower.
    for (std::size_t i = 0; i + 1 < series.size(); i += 2) {
        const double with = series[i].epe.back();
        const double without = series[i + 1].epe.back();
        std::printf("%s: final %.1f (w.) vs %.1f (w.o.) -> %s\n", series[i].label.c_str(), with,
                    without, with <= without ? "modulator wins" : "modulator loses");
    }
    return 0;
}
