// Shared table formatting for the paper-style benchmark output.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace camo::bench {

/// One engine's results for one design row.
struct Cell {
    double epe = 0.0;
    double pvb = 0.0;
    double rt = 0.0;
};

/// Accumulates per-design rows for several engines and prints a table in
/// the layout of the paper's Table 1 / Table 2, including Sum and Ratio
/// rows (ratios are relative to the last engine, which is CAMO/"Ours").
class ResultTable {
public:
    ResultTable(std::string title, std::vector<std::string> engines,
                std::string aux_header = "")
        : title_(std::move(title)), engines_(std::move(engines)),
          aux_header_(std::move(aux_header)) {}

    void add_row(const std::string& design, int aux, const std::vector<Cell>& cells) {
        rows_.push_back({design, aux, cells});
    }

    void print() const {
        std::printf("\n=== %s ===\n", title_.c_str());
        std::printf("%-8s", "Design");
        if (!aux_header_.empty()) std::printf(" %8s", aux_header_.c_str());
        for (const auto& e : engines_) std::printf(" | %22s", e.c_str());
        std::printf("\n");
        std::printf("%-8s", "");
        if (!aux_header_.empty()) std::printf(" %8s", "");
        for (std::size_t e = 0; e < engines_.size(); ++e) {
            std::printf(" | %6s %9s %5s", "EPE", "PVB", "RT");
        }
        std::printf("\n");

        std::vector<Cell> sums(engines_.size());
        for (const Row& r : rows_) {
            std::printf("%-8s", r.design.c_str());
            if (!aux_header_.empty()) std::printf(" %8d", r.aux);
            for (std::size_t e = 0; e < engines_.size(); ++e) {
                const Cell& c = r.cells[e];
                std::printf(" | %6.0f %9.0f %5.2f", std::round(c.epe), c.pvb, c.rt);
                sums[e].epe += c.epe;
                sums[e].pvb += c.pvb;
                sums[e].rt += c.rt;
            }
            std::printf("\n");
        }

        std::printf("%-8s", "Sum");
        int aux_sum = 0;
        for (const Row& r : rows_) aux_sum += r.aux;
        if (!aux_header_.empty()) std::printf(" %8d", aux_sum);
        for (const Cell& s : sums) std::printf(" | %6.0f %9.0f %5.1f", s.epe, s.pvb, s.rt);
        std::printf("\n");

        const Cell& ours = sums.back();
        std::printf("%-8s", "Ratio");
        if (!aux_header_.empty()) std::printf(" %8s", "");
        for (const Cell& s : sums) {
            std::printf(" | %6.2f %9.2f %5.2f", safe_div(s.epe, ours.epe),
                        safe_div(s.pvb, ours.pvb), safe_div(s.rt, ours.rt));
        }
        std::printf("\n");
    }

private:
    struct Row {
        std::string design;
        int aux = 0;
        std::vector<Cell> cells;
    };

    static double safe_div(double a, double b) { return b != 0.0 ? a / b : 0.0; }

    std::string title_;
    std::vector<std::string> engines_;
    std::string aux_header_;
    std::vector<Row> rows_;
};

}  // namespace camo::bench
