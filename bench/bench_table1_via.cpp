// Reproduces paper Table 1: via-layer OPC comparison of the DAMO proxy
// (one-shot), the Calibre proxy (rule engine), RL-OPC and CAMO across 13
// test clips (V1..V13, via counts 2-6), reporting EPE (nm), PV band (nm^2)
// and runtime (s) with Sum and Ratio rows.
//
// Expected shape vs the paper: the one-shot engine is fastest but has the
// largest EPE; CAMO attains the lowest EPE and PVB with a runtime advantage
// over the fixed-recipe rule engine thanks to early exit; RL-OPC sits in
// between on EPE and is slowest.
#include <cstdio>

#include "common/logging.hpp"
#include "core/experiment.hpp"
#include "opc/one_shot.hpp"
#include "opc/rule_engine.hpp"
#include "table_format.hpp"

int main() {
    using namespace camo;
    set_log_level(LogLevel::kInfo);

    litho::LithoSim sim(core::Experiment::litho_config());
    const opc::OpcOptions opt = core::Experiment::via_options();

    // Engines. The rule engine runs its fixed recipe (no early exit), like
    // a commercial flow; the learned engines use the paper's early exit.
    opc::OneShotEngine damo_proxy;
    opc::RuleEngine calibre_proxy;

    const auto train_clips =
        core::fragment_via_clips(layout::via_training_set(core::Experiment::kDatasetSeed));

    const core::CamoConfig rl_cfg = core::Experiment::via_rlopc_config();
    core::CamoEngine rlopc(rl_cfg);
    core::ensure_trained(rlopc, train_clips, sim, opt,
                         core::Experiment::weights_path(rl_cfg, "via"));

    const core::CamoConfig camo_cfg = core::Experiment::via_camo_config();
    core::CamoEngine camo(camo_cfg);
    core::ensure_trained(camo, train_clips, sim, opt,
                         core::Experiment::weights_path(camo_cfg, "via"));

    const auto test = layout::via_test_set(core::Experiment::kDatasetSeed);
    const auto layouts = core::fragment_via_clips(test);

    bench::ResultTable table(
        "Table 1: OPC results on via layer patterns (EPE nm, PVB nm^2, RT s)",
        {"DAMO-proxy", "Calibre-proxy", "RL-OPC", "CAMO (ours)"}, "Via#");

    for (std::size_t i = 0; i < layouts.size(); ++i) {
        std::vector<bench::Cell> cells;
        for (opc::Engine* engine :
             std::initializer_list<opc::Engine*>{&damo_proxy, &calibre_proxy, &rlopc, &camo}) {
            const opc::EngineResult r = engine->optimize(layouts[i], sim, opt);
            cells.push_back({r.final_metrics.sum_abs_epe, r.final_metrics.pvband_nm2,
                             r.runtime_s});
        }
        table.add_row(test[i].name, static_cast<int>(test[i].targets.size()), cells);
        std::fprintf(stderr, "[table1] %s done\n", test[i].name.c_str());
    }
    table.print();
    return 0;
}
