// Micro-benchmarks (google-benchmark) of the computational substrates:
// FFT, rasterization, aerial imaging, full vs incremental evaluation,
// squish encoding and policy inference.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "core/experiment.hpp"
#include "core/graph.hpp"
#include "core/modulator.hpp"
#include "core/policy.hpp"
#include "core/squish.hpp"
#include "layout/metal_gen.hpp"
#include "litho/aerial.hpp"
#include "litho/process_window.hpp"
#include "layout/shard.hpp"
#include "nn/backend.hpp"
#include "litho/simulator.hpp"
#include "obs/trace.hpp"
#include "opc/sraf.hpp"
#include "rl/reward.hpp"
#include "rl/trajstore.hpp"
#include "runtime/stream_queue.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace camo;

void BM_Fft2d(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    std::vector<litho::Complex> grid(static_cast<std::size_t>(n) * n, {0.5F, 0.0F});
    for (auto _ : state) {
        litho::fft2d_forward(grid, n);
        benchmark::DoNotOptimize(grid.data());
    }
}
BENCHMARK(BM_Fft2d)->Arg(256)->Arg(512);

void BM_RasterizeClip(benchmark::State& state) {
    std::vector<geo::Polygon> polys;
    for (int i = 0; i < 6; ++i) {
        const int x = 300 + i * 250;
        polys.push_back(geo::Polygon::from_rect({x, 600, x + 70, 670}));
    }
    geo::Raster raster(512, 4.0);
    for (auto _ : state) {
        raster.rasterize(polys);
        benchmark::DoNotOptimize(raster.data().data());
    }
}
BENCHMARK(BM_RasterizeClip);

litho::LithoSim& shared_sim() {
    static litho::LithoSim sim = [] {
        litho::LithoConfig cfg;
        cfg.grid = 256;
        cfg.pixel_nm = 4.0;
        cfg.kernels_nominal = 6;
        cfg.kernels_defocus = 5;
        cfg.cache_dir = "data";
        return litho::LithoSim(cfg);
    }();
    return sim;
}

void BM_AerialImage(benchmark::State& state) {
    litho::LithoSim& sim = shared_sim();
    geo::Raster mask(256, 4.0);
    mask.add_polygon(geo::Polygon::from_rect({460, 460, 540, 540}));
    for (auto _ : state) {
        const geo::Raster aerial = sim.aerial_nominal(mask);
        benchmark::DoNotOptimize(aerial.data().data());
    }
}
BENCHMARK(BM_AerialImage);

void BM_FullEvaluate(benchmark::State& state) {
    litho::LithoSim& sim = shared_sim();
    const int lo = 500 - 35;
    geo::SegmentedLayout layout({geo::Polygon::from_rect({lo, lo, lo + 70, lo + 70})},
                                {geo::FragmentStyle::kVia, 60}, {}, 1000);
    const std::vector<int> offsets(4, 3);
    for (auto _ : state) {
        const litho::SimMetrics m = sim.evaluate(layout, offsets);
        benchmark::DoNotOptimize(m.sum_abs_epe);
    }
}
BENCHMARK(BM_FullEvaluate);

// ---- Incremental vs full evaluation ----------------------------------------
// One metal clip (84 segments at the 60 nm pitch), swept over the dirty-set
// size. Arg = percent of segments moved per evaluation; Arg 0 = the full
// evaluate() baseline on the same layout. The speedup table is the ratio of
// the Arg 0 row to each incremental row.

const geo::SegmentedLayout& incremental_bench_layout() {
    static const geo::SegmentedLayout layout = [] {
        Rng rng(3);
        camo::layout::MetalGenOptions opt;
        opt.clip_nm = 1000;
        opt.margin_nm = 120;
        return geo::SegmentedLayout(camo::layout::generate_metal_clip(64, rng, opt),
                                    {geo::FragmentStyle::kMetal, 60}, {}, opt.clip_nm);
    }();
    return layout;
}

void BM_FullEvaluateMetal(benchmark::State& state) {
    litho::LithoSim& sim = shared_sim();
    const geo::SegmentedLayout& layout = incremental_bench_layout();
    std::vector<int> offsets(static_cast<std::size_t>(layout.num_segments()), 2);
    int step = 0;
    for (auto _ : state) {
        offsets[static_cast<std::size_t>(step++ % layout.num_segments())] ^= 1;
        const litho::SimMetrics m = sim.evaluate(layout, offsets);
        benchmark::DoNotOptimize(m.sum_abs_epe);
    }
}
BENCHMARK(BM_FullEvaluateMetal);

void BM_IncrementalEvaluate(benchmark::State& state) {
    litho::LithoSim sim(shared_sim());  // private incremental cache
    const geo::SegmentedLayout& layout = incremental_bench_layout();
    const int segments = layout.num_segments();
    const int dirty_count =
        std::max(1, segments * static_cast<int>(state.range(0)) / 100);

    std::vector<int> offsets(static_cast<std::size_t>(segments), 2);
    benchmark::DoNotOptimize(sim.evaluate_incremental(layout, offsets).sum_abs_epe);

    int cursor = 0;
    int sign = 1;
    for (auto _ : state) {
        std::vector<int> dirty;
        dirty.reserve(static_cast<std::size_t>(dirty_count));
        for (int j = 0; j < dirty_count; ++j) {
            const int i = cursor++ % segments;
            offsets[static_cast<std::size_t>(i)] += sign;
            dirty.push_back(i);
        }
        if (cursor >= segments) {
            cursor = 0;
            sign = -sign;  // walk offsets back so they stay bounded
        }
        const litho::SimMetrics m = sim.evaluate_incremental(layout, offsets, dirty);
        benchmark::DoNotOptimize(m.sum_abs_epe);
    }
    state.counters["hit_rate"] = benchmark::Counter(
        static_cast<double>(sim.incremental_hit_count()) /
        static_cast<double>(std::max(1LL, sim.incremental_hit_count() +
                                              sim.incremental_full_count())));
}
BENCHMARK(BM_IncrementalEvaluate)->Arg(1)->Arg(5)->Arg(10)->Arg(25)->Arg(50);

// ---- Process-window sweep vs N independent evaluations ---------------------
// The standard window (3 doses x 2 focuses = 6 corners) on the metal clip.
// The baseline images every corner with its own evaluate() call — its own
// rasterization and forward FFT each time; the sweep rasterizes once and
// shares one spectrum (and, on the incremental variant, the cached raster +
// spectrum from the previous iteration) across all corners. The speedup is
// the ratio of BM_WindowIndependentEvaluates to the sweep rows.

void BM_WindowIndependentEvaluates(benchmark::State& state) {
    litho::LithoSim& sim = shared_sim();
    const geo::SegmentedLayout& layout = incremental_bench_layout();
    const litho::WindowSpec spec = litho::WindowSpec::standard(sim.config());
    std::vector<int> offsets(static_cast<std::size_t>(layout.num_segments()), 2);
    for (auto _ : state) {
        double worst = 0.0;
        for (int c = 0; c < spec.corner_count(); ++c) {
            const litho::SimMetrics m = sim.evaluate(layout, offsets);
            worst = std::max(worst, m.sum_abs_epe);
        }
        benchmark::DoNotOptimize(worst);
    }
}
BENCHMARK(BM_WindowIndependentEvaluates);

void BM_WindowSweep(benchmark::State& state) {
    litho::LithoSim& sim = shared_sim();
    const geo::SegmentedLayout& layout = incremental_bench_layout();
    const litho::ProcessWindowSweep sweep(sim.config(),
                                          litho::WindowSpec::standard(sim.config()));
    const std::vector<int> offsets(static_cast<std::size_t>(layout.num_segments()), 2);
    for (auto _ : state) {
        const litho::WindowMetrics w = sweep.evaluate(layout, offsets);
        benchmark::DoNotOptimize(w.worst_epe);
    }
}
BENCHMARK(BM_WindowSweep);

void BM_WindowSweepIncremental(benchmark::State& state) {
    litho::LithoSim sim(shared_sim());  // private incremental cache
    const geo::SegmentedLayout& layout = incremental_bench_layout();
    const litho::WindowSpec spec = litho::WindowSpec::standard(sim.config());
    const int segments = layout.num_segments();
    std::vector<int> offsets(static_cast<std::size_t>(segments), 2);
    benchmark::DoNotOptimize(sim.evaluate_incremental(layout, offsets).sum_abs_epe);

    // One segment moves per sweep: the OPC-loop scenario where each window
    // evaluation reuses the cached raster + spectrum via one sparse delta.
    int cursor = 0;
    int sign = 1;
    for (auto _ : state) {
        offsets[static_cast<std::size_t>(cursor++ % segments)] += sign;
        if (cursor >= segments) {
            cursor = 0;
            sign = -sign;  // walk offsets back so they stay bounded
        }
        const litho::WindowMetrics w = sim.evaluate_window_incremental(layout, offsets, spec);
        benchmark::DoNotOptimize(w.worst_epe);
    }
}
BENCHMARK(BM_WindowSweepIncremental);

// ---- Nominal vs window reward: per-step cost of the RL reward modes --------
// One policy step on the metal clip scored under each reward mode: the
// nominal row pays one incremental evaluation + step_reward, the
// worst-corner row one incremental window sweep (cached spectrum serving
// every corner) + window_step_reward. The ratio is the per-step price of
// optimizing through the window instead of the nominal corner.

void BM_RewardNominalStep(benchmark::State& state) {
    litho::LithoSim sim(shared_sim());  // private incremental cache
    const geo::SegmentedLayout& layout = incremental_bench_layout();
    const int segments = layout.num_segments();
    std::vector<int> offsets(static_cast<std::size_t>(segments), 2);
    litho::SimMetrics m = sim.evaluate_incremental(layout, offsets);

    int cursor = 0;
    int sign = 1;
    for (auto _ : state) {
        const int i = cursor++ % segments;
        offsets[static_cast<std::size_t>(i)] += sign;
        if (cursor >= segments) {
            cursor = 0;
            sign = -sign;  // walk offsets back so they stay bounded
        }
        const std::vector<int> dirty{i};
        const litho::SimMetrics m2 = sim.evaluate_incremental(layout, offsets, dirty);
        const double r =
            rl::step_reward(m.sum_abs_epe, m2.sum_abs_epe, m.pvband_nm2, m2.pvband_nm2);
        benchmark::DoNotOptimize(r);
        m = m2;
    }
}
BENCHMARK(BM_RewardNominalStep);

void BM_RewardWorstCornerStep(benchmark::State& state) {
    litho::LithoSim sim(shared_sim());  // private incremental cache
    const geo::SegmentedLayout& layout = incremental_bench_layout();
    const litho::WindowSpec spec = litho::WindowSpec::standard(sim.config());
    rl::WindowRewardConfig reward;
    reward.mode = rl::RewardMode::kWorstCorner;
    const int segments = layout.num_segments();
    std::vector<int> offsets(static_cast<std::size_t>(segments), 2);
    litho::WindowMetrics w = sim.evaluate_window_prime(layout, offsets, spec);

    int cursor = 0;
    int sign = 1;
    for (auto _ : state) {
        offsets[static_cast<std::size_t>(cursor++ % segments)] += sign;
        if (cursor >= segments) {
            cursor = 0;
            sign = -sign;  // walk offsets back so they stay bounded
        }
        const litho::WindowMetrics w2 = sim.evaluate_window_incremental(layout, offsets, spec);
        const double r = rl::window_step_reward(w, w2, reward);
        benchmark::DoNotOptimize(r);
        w = w2;
    }
}
BENCHMARK(BM_RewardWorstCornerStep);

// ---- Data-parallel training runtime ----------------------------------------
// Teacher-trajectory collection and one phase-1 imitation epoch on the via
// training set, swept over the worker count (Arg). Results are bit-identical
// at any width (the trainer's fixed-order gradient reduction), so the rows
// measure pure scaling; the speedup table is the ratio of the Arg 1 row to
// each wider row. The epoch row uses whole-epoch minibatches (phase1_batch
// 0) — the configuration with the most exposed parallelism, since samples
// within a minibatch run concurrently and minibatches are sequential.

camo::core::CamoConfig train_bench_config(int workers) {
    camo::core::CamoConfig cfg;
    cfg.policy.squish_size = 32;
    cfg.squish.size = 32;
    cfg.teacher_steps = 5;
    cfg.teacher_biases = {3, 0, 8};
    cfg.train_workers = workers;
    cfg.phase1_batch = 0;  // whole-epoch minibatch: maximum exposed parallelism
    cfg.seed = 7;
    return cfg;
}

const std::vector<geo::SegmentedLayout>& train_bench_clips() {
    static const std::vector<geo::SegmentedLayout> clips = [] {
        layout::ViaGenOptions gen;
        gen.clip_nm = 1000;  // fits the shared 256-grid simulator's span
        gen.margin_nm = 200;
        gen.min_spacing_nm = 120;
        return core::fragment_via_clips(layout::via_batch_set(7, 3, gen));
    }();
    return clips;
}

void BM_TeacherCollect(benchmark::State& state) {
    const int workers = static_cast<int>(state.range(0));
    core::CamoEngine engine(train_bench_config(workers));
    litho::LithoSim sim(shared_sim());
    const opc::OpcOptions opt = core::Experiment::via_options();
    std::size_t samples = 0;
    for (auto _ : state) {
        const core::Phase1Dataset data =
            engine.collect_teacher_data(train_bench_clips(), sim, opt);
        samples = data.samples.size();
        benchmark::DoNotOptimize(samples);
    }
    state.counters["samples"] = static_cast<double>(samples);
    state.counters["workers"] = workers;
}
BENCHMARK(BM_TeacherCollect)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_Phase1Epoch(benchmark::State& state) {
    const int workers = static_cast<int>(state.range(0));
    core::CamoEngine engine(train_bench_config(workers));
    litho::LithoSim sim(shared_sim());
    const core::Phase1Dataset data =
        engine.collect_teacher_data(train_bench_clips(), sim, core::Experiment::via_options());
    for (auto _ : state) {
        const double nll = engine.run_phase1_epoch(data);
        benchmark::DoNotOptimize(nll);
    }
    state.counters["samples"] = static_cast<double>(data.samples.size());
    state.counters["workers"] = workers;
}
BENCHMARK(BM_Phase1Epoch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---- Packed trajectory store ------------------------------------------------
// Append+flush of a freshly collected teacher dataset into the packed store,
// and one phase-1 epoch replayed from the memory mapping. The replay row is
// directly comparable to BM_Phase1Epoch/1: the delta is the pure cost of
// streaming minibatches from disk instead of RAM (feature materialization
// from the f32 heap) — training math is byte-identical.

void BM_TrajAppend(benchmark::State& state) {
    litho::LithoSim sim(shared_sim());
    const std::string path = "/tmp/camo_bench_traj.ctrj";
    // One collection, re-appended every iteration: measures store encode +
    // dedupe + atomic publish, not the teacher.
    core::CamoEngine collector(train_bench_config(1));
    const core::Phase1Dataset data = collector.collect_teacher_data(
        train_bench_clips(), sim, core::Experiment::via_options());
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        rl::TrajStoreWriter writer(path);
        std::size_t k = 0;  // samples are flattened in trajectory-step order
        for (std::size_t j = 0; j < data.trajectories.size(); ++j) {
            std::vector<std::span<const nn::Tensor>> feats;
            for (std::size_t t = 0; t < data.trajectories[j].steps.size(); ++t, ++k) {
                feats.emplace_back(data.samples[k].features);
            }
            writer.append(data.trajectories[j], feats);
        }
        writer.flush();
        bytes = writer.byte_size();
        benchmark::DoNotOptimize(bytes);
    }
    state.counters["bytes"] = static_cast<double>(bytes);
    state.counters["steps"] = static_cast<double>(data.samples.size());
    std::remove(path.c_str());
}
BENCHMARK(BM_TrajAppend)->Unit(benchmark::kMillisecond);

void BM_TrajReplayEpoch(benchmark::State& state) {
    core::CamoEngine engine(train_bench_config(1));
    litho::LithoSim sim(shared_sim());
    const std::string path = "/tmp/camo_bench_traj_replay.ctrj";
    rl::TrajStoreWriter writer(path);
    engine.collect_teacher_data(train_bench_clips(), sim, core::Experiment::via_options(),
                                &writer);
    const rl::TrajStoreReader reader(path);
    const core::Phase1Replay replay = engine.make_phase1_replay(reader, train_bench_clips());
    for (auto _ : state) {
        const double nll = engine.run_phase1_epoch(replay);
        benchmark::DoNotOptimize(nll);
    }
    state.counters["steps"] = static_cast<double>(reader.step_count());
    state.counters["states"] = static_cast<double>(reader.state_count());
    std::remove(path.c_str());
}
BENCHMARK(BM_TrajReplayEpoch)->Unit(benchmark::kMillisecond);

void BM_SquishEncode(benchmark::State& state) {
    const std::vector<geo::Polygon> targets = {geo::Polygon::from_rect({465, 465, 535, 535})};
    std::vector<geo::Polygon> mask = {geo::Polygon::from_rect({462, 462, 538, 538})};
    const auto srafs = opc::insert_srafs(targets);
    mask.insert(mask.end(), srafs.begin(), srafs.end());
    const core::SquishOptions opt{500, static_cast<int>(state.range(0))};
    for (auto _ : state) {
        const nn::Tensor t = core::encode_squish_window(mask, targets, {500.0, 465.0}, opt);
        benchmark::DoNotOptimize(t.data().data());
    }
}
BENCHMARK(BM_SquishEncode)->Arg(32)->Arg(64);

void BM_PolicyForward(benchmark::State& state) {
    core::PolicyConfig cfg;
    cfg.squish_size = 32;
    core::PolicyNetwork net(cfg);
    const int n = static_cast<int>(state.range(0));
    core::Graph g;
    g.n = n;
    g.neighbors.assign(static_cast<std::size_t>(n), {});
    for (int i = 0; i + 1 < n; ++i) {
        g.neighbors[static_cast<std::size_t>(i)].push_back(i + 1);
        g.neighbors[static_cast<std::size_t>(i + 1)].push_back(i);
    }
    std::vector<nn::Tensor> feats;
    Rng rng(1);
    for (int i = 0; i < n; ++i) {
        nn::Tensor t({6, 32, 32});
        for (float& v : t.data()) v = static_cast<float>(rng.uniform(0, 1));
        feats.push_back(std::move(t));
    }
    for (auto _ : state) {
        const nn::Tensor logits = net.forward(feats, g);
        benchmark::DoNotOptimize(logits.data().data());
    }
}
BENCHMARK(BM_PolicyForward)->Arg(8)->Arg(24);

// ---- Inference backend (PR 9) ----------------------------------------------
// Arg(0) on every row: 0 = scalar reference kernels, 1 = the best SIMD level
// of this build + CPU (identical to scalar when neither provides one). The
// speedup table is the ratio of each /0/... row to its /1/... twin.

// Packed GEMM at policy-head scale, swept over the batched row count.
void BM_LinearForward(benchmark::State& state) {
    const bool simd_on = state.range(0) != 0;
    const int rows = static_cast<int>(state.range(1));
    constexpr int kIn = 64;
    constexpr int kOut = 64;
    Rng rng(5);
    nn::Tensor w({kOut, kIn});
    nn::Tensor b({kOut});
    for (float& v : w.data()) v = static_cast<float>(rng.uniform(-1, 1));
    for (float& v : b.data()) v = static_cast<float>(rng.uniform(-1, 1));
    const nn::PackedLinear m = nn::pack_linear(w, &b);
    std::vector<float> x(static_cast<std::size_t>(rows) * kIn, 0.5F);
    std::vector<float> y(static_cast<std::size_t>(rows) * kOut);

    simd::ScopedOverride force(simd_on ? simd::detected_level() : simd::Level::kScalar);
    const nn::Backend& be = nn::active_backend();
    for (auto _ : state) {
        be.linear(m, x.data(), rows, y.data());
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * rows);
    state.SetLabel(simd::level_name(simd::active_level()));
}
BENCHMARK(BM_LinearForward)->Args({0, 1})->Args({1, 1})->Args({0, 8})->Args({1, 8})
    ->Args({0, 32})->Args({1, 32});

// Full policy evaluation over a wave of clips: the /0 row issues one
// single-clip packed forward per clip on the scalar kernels (the pre-PR
// serving shape); the /1 row one batched forward over all clips on the SIMD
// kernels — the tentpole speedup the README table quotes.
void BM_BatchedInfer(benchmark::State& state) {
    const bool batched_simd = state.range(0) != 0;
    const int clips = static_cast<int>(state.range(1));
    constexpr int kNodes = 8;
    core::PolicyConfig cfg;
    cfg.squish_size = 32;
    core::PolicyNetwork net(cfg);

    core::Graph g;
    g.n = kNodes;
    g.neighbors.assign(kNodes, {});
    for (int i = 0; i + 1 < kNodes; ++i) {
        g.neighbors[static_cast<std::size_t>(i)].push_back(i + 1);
        g.neighbors[static_cast<std::size_t>(i + 1)].push_back(i);
    }
    Rng rng(1);
    std::vector<std::vector<nn::Tensor>> feats(static_cast<std::size_t>(clips));
    for (auto& clip_feats : feats) {
        for (int i = 0; i < kNodes; ++i) {
            nn::Tensor t({6, 32, 32});
            for (float& v : t.data()) v = static_cast<float>(rng.uniform(0, 1));
            clip_feats.push_back(std::move(t));
        }
    }
    std::vector<core::PolicyNetwork::ClipRequest> requests;
    for (const auto& clip_feats : feats) requests.push_back({&clip_feats, &g});

    simd::ScopedOverride force(batched_simd ? simd::detected_level() : simd::Level::kScalar);
    for (auto _ : state) {
        if (batched_simd) {
            const std::vector<nn::Tensor> logits = net.infer_batch(requests);
            benchmark::DoNotOptimize(logits.data());
        } else {
            for (const auto& clip_feats : feats) {
                const nn::Tensor logits = net.infer(clip_feats, g);
                benchmark::DoNotOptimize(logits.data().data());
            }
        }
    }
    state.SetItemsProcessed(state.iterations() * clips * kNodes);
    state.SetLabel(simd::level_name(simd::active_level()));
}
BENCHMARK(BM_BatchedInfer)->Args({0, 8})->Args({1, 8})->Args({0, 32})->Args({1, 32});

// The two SupportApplicator hot loops (litho/incremental.cpp) in isolation:
// per SOCS kernel, multiply the delta spectrum by the kernel coefficients
// over the support, then accumulate lambda * |field|^2 into the intensity
// map. Arg(1) = support size in complex elements (4096 ~ a sparse segment
// delta, 65536 = a full 256x256 frame); 11 kernels per evaluation, matching
// shared_sim()'s 6 nominal + 5 defocus.
void BM_SupportApply(benchmark::State& state) {
    const bool simd_on = state.range(0) != 0;
    const std::size_t support = static_cast<std::size_t>(state.range(1));
    constexpr int kKernels = 11;
    Rng rng(9);
    std::vector<std::complex<float>> spectrum(support);
    for (auto& c : spectrum) {
        c = {static_cast<float>(rng.uniform(-1, 1)), static_cast<float>(rng.uniform(-1, 1))};
    }
    std::vector<std::vector<std::complex<float>>> coeffs(kKernels, spectrum);
    std::vector<std::complex<float>> prod(support);
    std::vector<float> intensity(support, 0.0F);

    simd::ScopedOverride force(simd_on ? simd::detected_level() : simd::Level::kScalar);
    const simd::Ops& ops = simd::ops();
    for (auto _ : state) {
        for (int k = 0; k < kKernels; ++k) {
            ops.cmul(coeffs[static_cast<std::size_t>(k)].data(), spectrum.data(), prod.data(),
                     support);
            ops.norm_acc(prod.data(), 0.3F, intensity.data(), support);
        }
        benchmark::DoNotOptimize(intensity.data());
    }
    state.SetItemsProcessed(state.iterations() * kKernels * static_cast<long long>(support));
    state.SetLabel(simd::level_name(simd::active_level()));
}
BENCHMARK(BM_SupportApply)->Args({0, 4096})->Args({1, 4096})->Args({0, 65536})
    ->Args({1, 65536});

void BM_Modulator(benchmark::State& state) {
    double epe = -8.0;
    for (auto _ : state) {
        const auto p = core::modulation_vector(epe, {});
        benchmark::DoNotOptimize(p[0]);
        epe = epe >= 8.0 ? -8.0 : epe + 0.5;
    }
}
BENCHMARK(BM_Modulator);

// Telemetry hot-path cost: Arg(0) = disabled (one relaxed load + branch; the
// acceptance bar is <= ~5 ns/op), Arg(1) = enabled (thread-local shard add /
// trace-ring write). State is restored so later rows stay untelemetered.
void BM_CounterIncrement(benchmark::State& state) {
    const bool was_enabled = obs::metrics_enabled();
    obs::set_metrics_enabled(state.range(0) != 0);
    const obs::MetricId id = obs::register_counter("bench.counter_increment");
    for (auto _ : state) {
        obs::counter_add(id);
    }
    obs::set_metrics_enabled(was_enabled);
}
BENCHMARK(BM_CounterIncrement)->Arg(0)->Arg(1);

void BM_SpanEnterExit(benchmark::State& state) {
    const bool was_tracing = obs::tracing_enabled();
    const bool was_metered = obs::metrics_enabled();
    obs::set_tracing_enabled(state.range(0) != 0);
    obs::set_metrics_enabled(state.range(0) != 0);
    const obs::MetricId hist = obs::register_histogram("bench.span.ns");
    for (auto _ : state) {
        const obs::Span span("bench.span", hist);
        benchmark::DoNotOptimize(&span);
    }
    obs::set_tracing_enabled(was_tracing);
    obs::set_metrics_enabled(was_metered);
}
BENCHMARK(BM_SpanEnterExit)->Arg(0)->Arg(1);

// --------------------------------------------------------- full-chip shard

// Shared chip for the shard/stitch rows: Arg = cells per side of a square
// grid of via3 scenario cells at 1000 nm pitch.
std::vector<geo::Polygon> bench_chip(int cells) {
    const scenario::Scenario sc = scenario::Registry::instance().get("via3");
    return scenario::chip_polygons(sc, cells, cells);
}

layout::ShardOptions bench_shard_options() {
    layout::ShardOptions opt;
    opt.tile_nm = 512;
    opt.halo_nm = 256;
    opt.fragment.style = geo::FragmentStyle::kVia;
    opt.sraf_gen = [](const std::vector<geo::Polygon>& t) { return opc::insert_srafs(t); };
    opt.auto_origin = false;
    return opt;
}

// Cutting a chip into halo-padded tiles: ownership assignment, membership
// scan, per-tile fragmentation and SRAF insertion.
void BM_Shard(benchmark::State& state) {
    const std::vector<geo::Polygon> chip = bench_chip(static_cast<int>(state.range(0)));
    const layout::ShardOptions opt = bench_shard_options();
    const litho::LithoConfig litho = scenario::quick_litho();
    std::size_t tiles = 0;
    for (auto _ : state) {
        const layout::TileSharder sharder(chip, opt, litho);
        tiles = sharder.tiles().size();
        benchmark::DoNotOptimize(&sharder);
    }
    state.counters["tiles"] = static_cast<double>(tiles);
    state.counters["polygons"] = static_cast<double>(chip.size());
}
BENCHMARK(BM_Shard)->Arg(2)->Arg(4);

// Owner-wins reassembly of per-tile offsets into the chip frame plus mask
// reconstruction — the post-OPC half of the pipeline.
void BM_Stitch(benchmark::State& state) {
    const std::vector<geo::Polygon> chip = bench_chip(static_cast<int>(state.range(0)));
    const layout::TileSharder sharder(chip, bench_shard_options(), scenario::quick_litho());
    const geo::SegmentedLayout chip_layout = sharder.chip_layout();
    std::vector<std::vector<int>> tile_offsets;
    for (const layout::Tile& t : sharder.tiles()) {
        tile_offsets.emplace_back(static_cast<std::size_t>(t.layout.num_segments()), 2);
    }
    for (auto _ : state) {
        const layout::StitchResult res = layout::stitch(sharder, chip_layout, tile_offsets);
        benchmark::DoNotOptimize(res.offsets.data());
    }
    state.counters["segments"] = static_cast<double>(chip_layout.num_segments());
}
BENCHMARK(BM_Stitch)->Arg(2)->Arg(4);

// Bounded-queue hand-off latency: one producer thread pushing through the
// streaming queue at the given capacity while the bench thread pops —
// the per-result overhead run_streaming adds on top of the OPC work.
void BM_QueueHandoff(benchmark::State& state) {
    const int capacity = static_cast<int>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        runtime::BoundedQueue<int> queue(static_cast<std::size_t>(capacity));
        constexpr int kItems = 4096;
        std::thread producer([&queue] {
            for (int i = 0; i < kItems; ++i) {
                if (!queue.push(int(i))) return;
            }
            queue.close();
        });
        state.ResumeTiming();
        long long sum = 0;
        while (auto item = queue.pop()) sum += *item;
        benchmark::DoNotOptimize(sum);
        state.PauseTiming();
        producer.join();
        state.ResumeTiming();
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_QueueHandoff)->Arg(1)->Arg(64)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
