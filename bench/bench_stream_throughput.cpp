// Full-chip streaming throughput: shard a scenario-generated multi-tile
// chip, stream the tile jobs through BatchScheduler::run_streaming across a
// thread sweep, stitch, and gate on the determinism contract — per-tile
// offsets bit-identical to the barrier run() and stitched chip offsets
// bit-identical across every thread count.
//
// Writes a BENCH_stream.json throughput artifact (path overridable with
// --json <path>) for the CI bench-trajectory upload. Exit code 1 on any
// equivalence failure, so CI can gate on it.
//
// CAMO_BENCH_FULL=1 switches to the production 512-grid lithography model;
// the default uses the quick 256 grid so the sweep finishes in seconds.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "layout/shard.hpp"
#include "litho/simulator.hpp"
#include "opc/rule_engine.hpp"
#include "opc/sraf.hpp"
#include "runtime/batch.hpp"
#include "runtime/thread_pool.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace camo;

litho::LithoConfig bench_litho_config() {
    litho::LithoConfig cfg = core::Experiment::litho_config();
    if (!core::Experiment::full_scale()) {
        cfg.grid = 256;
        cfg.kernels_nominal = 6;
        cfg.kernels_defocus = 5;
    }
    return cfg;
}

struct Row {
    int threads = 0;
    double wall_s = 0.0;
    double tiles_per_s = 0.0;
    long long litho_evaluations = 0;
    bool identical = true;
};

}  // namespace

int main(int argc, char** argv) {
    std::string json_path = "BENCH_stream.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
    }

    const litho::LithoConfig litho_cfg = bench_litho_config();
    const scenario::Scenario sc = scenario::Registry::instance().get("via3");

    // 4x4 cells at the scenario's 1000 nm clip pitch: a chip that cuts into
    // a few dozen overlapping tiles with plenty of cross-tile context.
    const std::vector<geo::Polygon> chip = scenario::chip_polygons(sc, 4, 4);

    layout::ShardOptions shard_opt;
    shard_opt.tile_nm = 512;
    shard_opt.halo_nm = 256;
    shard_opt.fragment.style = geo::FragmentStyle::kVia;
    shard_opt.sraf_gen = [](const std::vector<geo::Polygon>& t) {
        return opc::insert_srafs(t);
    };
    shard_opt.auto_origin = false;
    shard_opt.origin = {0, 0};

    const layout::TileSharder sharder(chip, shard_opt, litho_cfg);
    const std::vector<geo::SegmentedLayout> tiles = sharder.tile_layouts();
    const geo::SegmentedLayout chip_layout = sharder.chip_layout();
    std::printf("stream throughput: %zu chip polygons -> %zu tiles (%d owned segments), grid %d\n",
                chip.size(), tiles.size(), sharder.total_owned_segments(), litho_cfg.grid);

    // Warm the shared kernel registry so the first sweep row does not pay
    // the one-time kernel build.
    { litho::LithoSim warmup(litho_cfg); }

    const runtime::ClipOptimizer rule = [](const geo::SegmentedLayout& layout,
                                           litho::LithoSim& sim, const opc::OpcOptions& o,
                                           std::uint64_t) {
        opc::RuleEngine engine;
        return engine.optimize(layout, sim, o);
    };

    runtime::BatchOptions base_opt;
    base_opt.seed = core::Experiment::kDatasetSeed;
    base_opt.opc = core::Experiment::via_options();

    // Barrier reference: the thin-wrapper run() on one thread.
    base_opt.threads = 1;
    runtime::BatchScheduler ref_sched(litho_cfg, base_opt);
    const runtime::BatchResult ref = ref_sched.run(tiles, rule, sharder.tile_names());
    if (ref.failed > 0) {
        std::printf("FAILED: %d reference tiles failed\n", ref.failed);
        return 1;
    }
    std::vector<std::vector<int>> ref_offsets;
    ref_offsets.reserve(ref.clips.size());
    for (const runtime::ClipResult& c : ref.clips) ref_offsets.push_back(c.offsets);
    const layout::StitchResult golden = layout::stitch(sharder, chip_layout, ref_offsets);

    std::vector<int> thread_counts{1, 2, 4};
    const int hw = runtime::ThreadPool::default_threads();
    if (hw > 4) thread_counts.push_back(hw);

    std::printf("%8s %10s %12s %10s %10s\n", "threads", "wall_s", "tiles/s", "speedup",
                "identical");
    std::vector<Row> rows;
    bool all_identical = true;
    double base_wall = 0.0;
    for (int threads : thread_counts) {
        runtime::BatchOptions opt = base_opt;
        opt.threads = threads;
        runtime::BatchScheduler sched(litho_cfg, opt);
        std::vector<std::vector<int>> tile_offsets(tiles.size());
        int failed_jobs = 0;
        const runtime::StreamStats stats = sched.run_streaming(
            tiles, rule,
            [&](runtime::ClipResult&& r) {
                if (!r.error.empty()) ++failed_jobs;
                tile_offsets[static_cast<std::size_t>(r.index)] = std::move(r.offsets);
            },
            sharder.tile_names());
        if (failed_jobs > 0 || stats.failed > 0) {
            std::printf("FAILED: %d tile jobs failed at %d threads\n", failed_jobs, threads);
            return 1;
        }

        Row row;
        row.threads = threads;
        row.wall_s = stats.wall_s;
        row.tiles_per_s = stats.wall_s > 0.0 ? static_cast<double>(stats.delivered) / stats.wall_s
                                             : 0.0;
        row.litho_evaluations = stats.litho_evaluations;
        // Monolithic-equivalence gate: streaming == barrier per tile, and
        // the stitched chip == the 1-thread golden stitch, byte for byte.
        row.identical = tile_offsets == ref_offsets;
        if (row.identical) {
            const layout::StitchResult stitched =
                layout::stitch(sharder, chip_layout, tile_offsets);
            row.identical = stitched.offsets == golden.offsets;
        }
        all_identical = all_identical && row.identical;
        if (threads == thread_counts.front()) base_wall = row.wall_s;

        std::printf("%8d %10.2f %12.2f %9.2fx %10s\n", threads, row.wall_s, row.tiles_per_s,
                    base_wall > 0.0 ? base_wall / row.wall_s : 0.0,
                    row.identical ? "yes" : "NO");
        rows.push_back(row);
    }

    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
        std::fprintf(f, "{\n  \"bench\": \"stream_throughput\",\n");
        std::fprintf(f, "  \"grid\": %d,\n  \"chip_polygons\": %zu,\n  \"tiles\": %zu,\n",
                     litho_cfg.grid, chip.size(), tiles.size());
        std::fprintf(f, "  \"owned_segments\": %d,\n  \"identical\": %s,\n",
                     sharder.total_owned_segments(), all_identical ? "true" : "false");
        std::fprintf(f, "  \"rows\": [\n");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            std::fprintf(f,
                         "    {\"threads\": %d, \"wall_s\": %.6f, \"tiles_per_s\": %.3f, "
                         "\"litho_evaluations\": %lld}%s\n",
                         rows[i].threads, rows[i].wall_s, rows[i].tiles_per_s,
                         rows[i].litho_evaluations, i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    } else {
        std::printf("FAILED: cannot write %s\n", json_path.c_str());
        return 1;
    }

    if (!all_identical) {
        std::printf("FAILED: streaming results diverged from the barrier reference\n");
        return 1;
    }
    return 0;
}
