// Reproduces paper Table 2: metal-layer OPC comparison of the Calibre proxy,
// RL-OPC and CAMO on M1..M10 (measure-point counts matching the paper),
// reporting Point #, EPE (nm), PV band (nm^2) and runtime (s).
//
// Expected shape vs the paper: RL-OPC fails to converge on the metal layer
// (its un-modulated action space is too large), giving it by far the worst
// EPE and runtime; CAMO beats the rule engine on EPE at comparable runtime.
#include <cstdio>

#include "common/logging.hpp"
#include "core/experiment.hpp"
#include "opc/rule_engine.hpp"
#include "table_format.hpp"

int main() {
    using namespace camo;
    set_log_level(LogLevel::kInfo);

    litho::LithoSim sim(core::Experiment::litho_config());
    const opc::OpcOptions opt = core::Experiment::metal_options();

    opc::RuleEngine calibre_proxy;

    const auto train_clips = core::fragment_metal_clips(
        layout::metal_training_set(core::Experiment::kDatasetSeed, 5));

    const core::CamoConfig rl_cfg = core::Experiment::metal_rlopc_config();
    core::CamoEngine rlopc(rl_cfg);
    core::ensure_trained(rlopc, train_clips, sim, opt,
                         core::Experiment::weights_path(rl_cfg, "metal"));

    const core::CamoConfig camo_cfg = core::Experiment::metal_camo_config();
    core::CamoEngine camo(camo_cfg);
    core::ensure_trained(camo, train_clips, sim, opt,
                         core::Experiment::weights_path(camo_cfg, "metal"));

    const auto test = layout::metal_test_set(core::Experiment::kDatasetSeed);
    const auto layouts = core::fragment_metal_clips(test);

    bench::ResultTable table(
        "Table 2: OPC results on metal layer patterns (EPE nm, PVB nm^2, RT s)",
        {"Calibre-proxy", "RL-OPC", "CAMO (ours)"}, "Point#");

    for (std::size_t i = 0; i < layouts.size(); ++i) {
        const int points = static_cast<int>(layouts[i].measure_points().size());
        std::vector<bench::Cell> cells;
        for (opc::Engine* engine :
             std::initializer_list<opc::Engine*>{&calibre_proxy, &rlopc, &camo}) {
            const opc::EngineResult r = engine->optimize(layouts[i], sim, opt);
            cells.push_back({r.final_metrics.sum_abs_epe, r.final_metrics.pvband_nm2,
                             r.runtime_s});
        }
        table.add_row(test[i].name, points, cells);
        std::fprintf(stderr, "[table2] %s done\n", test[i].name.c_str());
    }
    table.print();
    return 0;
}
