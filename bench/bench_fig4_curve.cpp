// Reproduces paper Figure 4: the modulator's projection behaviour. For a
// sweep of signed EPE values, prints the softmax-normalized preference over
// the five movements {-2,-1,0,+1,+2} nm under f(x) = 0.02 x^4 + 1, plus the
// projection function itself.
#include <cstdio>

#include "core/modulator.hpp"

int main() {
    using namespace camo;
    const core::ModulatorConfig cfg;

    std::printf("=== Figure 4: modulator projection f(x) = %.2f x^%d + %.1f ===\n", cfg.k,
                cfg.n, cfg.b);
    std::printf("%8s | %8s %8s %8s %8s %8s | peak\n", "EPE(nm)", "m1=-2", "m2=-1", "m3=0",
                "m4=+1", "m5=+2");
    for (double epe : {-10.0, -6.0, -4.0, -2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0, 4.0, 6.0, 10.0}) {
        const auto p = core::modulation_vector(epe, cfg);
        int peak = 0;
        for (int i = 1; i < 5; ++i) {
            if (p[static_cast<std::size_t>(i)] > p[static_cast<std::size_t>(peak)]) peak = i;
        }
        std::printf("%8.1f | %8.4f %8.4f %8.4f %8.4f %8.4f | m%d (%+d nm)\n", epe, p[0], p[1],
                    p[2], p[3], p[4], peak + 1, peak - 2);
    }

    std::printf("\nProperties verified by the sweep:\n");
    std::printf("  - near-uniform preference for |EPE| < 1 nm\n");
    std::printf("  - positive EPE peaks at inward moves, negative at outward\n");
    std::printf("  - sharpness grows with |EPE| (near one-hot beyond ~6 nm)\n");
    return 0;
}
