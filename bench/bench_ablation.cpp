// Ablations of the design choices called out in DESIGN.md:
//
//  A. Decision coordination: CAMO vs no-GNN vs no-RNN vs neither (RL-OPC
//     structure), each trained with a small equal budget, plus modulator
//     on/off at inference — isolating the paper's two correlation
//     mechanisms and the modulator (paper Section 4.4).
//  B. Lithography substrate: SOCS kernel-count sweep — EPE/PVB drift vs
//     the full-rank reference as the kernel budget shrinks.
//  C. Modulator exponent sweep (f(x) = k x^n + b).
//  D. Reward mode: nominal vs worst-corner vs weighted-corner objective at
//     an equal step budget — the nominal-vs-window rows behind the
//     window-aware reward (worst-corner |EPE| and exact PV band of the
//     final masks, judged through one shared dense sweep).
#include <cstdio>

#include "common/logging.hpp"
#include "core/experiment.hpp"
#include "core/modulator.hpp"
#include "opc/rule_engine.hpp"

namespace {

using namespace camo;

void coordination_ablation(litho::LithoSim& sim) {
    const opc::OpcOptions opt = core::Experiment::via_options();
    // Small equal budget for every variant: 4 training clips, two teacher
    // biases, 20 epochs — enough to rank the variants, cheap enough that
    // the whole ablation trains in under a minute per variant (cached).
    const auto all_train = layout::via_training_set(core::Experiment::kDatasetSeed);
    const auto train = core::fragment_via_clips(
        {all_train[0], all_train[3], all_train[6], all_train[9]});
    const auto test_clips = layout::via_test_set(core::Experiment::kDatasetSeed);
    const auto test = core::fragment_via_clips(
        {test_clips[0], test_clips[2], test_clips[4], test_clips[6]});

    struct Variant {
        const char* label;
        bool gnn;
        bool rnn;
    };
    const Variant variants[] = {{"GNN+RNN (CAMO)", true, true},
                                {"GNN only", true, false},
                                {"RNN only", false, true},
                                {"neither (RL-OPC arch)", false, false}};

    std::printf("\n=== Ablation A: decision coordination (4 via clips, equal small budget) ===\n");
    std::printf("%-24s %12s %12s %8s\n", "variant", "EPE(mod on)", "EPE(mod off)", "iters");

    for (const Variant& v : variants) {
        core::CamoConfig cfg = core::Experiment::via_camo_config();
        cfg.policy.use_gnn = v.gnn;
        cfg.policy.use_rnn = v.rnn;
        cfg.phase1_epochs = 20;  // equal reduced budget for all variants
        cfg.phase2_episodes = 1;
        cfg.teacher_biases = {3, 0};
        cfg.name = std::string("ablate-") + (v.gnn ? "g" : "") + (v.rnn ? "r" : "n");
        core::CamoEngine engine(cfg);
        core::ensure_trained(engine, train, sim, opt,
                             core::Experiment::weights_path(cfg, "via"));

        double epe_on = 0.0;
        double epe_off = 0.0;
        int iters = 0;
        for (const auto& layout : test) {
            engine.set_modulator_enabled(true);
            const auto r1 = engine.optimize(layout, sim, opt);
            engine.set_modulator_enabled(false);
            const auto r2 = engine.optimize(layout, sim, opt);
            epe_on += r1.final_metrics.sum_abs_epe;
            epe_off += r2.final_metrics.sum_abs_epe;
            iters += r1.iterations;
        }
        std::printf("%-24s %12.1f %12.1f %8d\n", v.label, epe_on, epe_off, iters);
    }
}

void kernel_count_ablation() {
    std::printf("\n=== Ablation B: SOCS kernel count (isolated via, +8 nm bias) ===\n");
    std::printf("%-8s %10s %12s %12s\n", "kernels", "EPE(nm)", "PVB(nm^2)", "energy");

    for (int k : {2, 4, 6, 8, 12}) {
        litho::LithoConfig cfg;
        cfg.grid = 256;
        cfg.pixel_nm = 4.0;
        cfg.kernels_nominal = k;
        cfg.kernels_defocus = std::max(2, k - 2);
        cfg.cache_dir = "";  // measure construction too; no cache pollution
        litho::LithoSim sim(cfg);

        const int clip = 1000;
        const int lo = clip / 2 - 35;
        geo::SegmentedLayout layout({geo::Polygon::from_rect({lo, lo, lo + 70, lo + 70})},
                                    {geo::FragmentStyle::kVia, 60}, {}, clip);
        const std::vector<int> bias(4, 8);
        const litho::SimMetrics m = sim.evaluate(layout, bias);

        const double trace = litho::tcc_trace(cfg, 0.0);
        const auto ks = sim.nominal_kernels();
        double captured = 0.0;
        for (double e : ks.eigenvalues) captured += e;
        std::printf("%-8d %10.2f %12.0f %11.1f%%\n", k, m.sum_abs_epe, m.pvband_nm2,
                    100.0 * captured / trace);
    }
}

void reward_mode_ablation(litho::LithoSim& sim) {
    std::printf("\n=== Ablation D: reward mode (rule engine, equal step budget) ===\n");
    std::printf("%-8s %-16s %12s %12s %14s %12s\n", "layer", "mode", "EPE(nom)", "EPE(worst)",
                "PVBexact", "CDrange");

    const auto via_clips = layout::via_test_set(core::Experiment::kDatasetSeed);
    const auto metal_clips = layout::metal_test_set(core::Experiment::kDatasetSeed);
    struct Layer {
        const char* name;
        std::vector<geo::SegmentedLayout> clips;
        opc::OpcOptions opt;
    };
    Layer layers[] = {
        {"via", core::fragment_via_clips({via_clips[0], via_clips[2]}),
         core::Experiment::via_options()},
        {"metal", core::fragment_metal_clips({metal_clips[0]}),
         core::Experiment::metal_options()},
    };
    const litho::WindowSpec spec = litho::WindowSpec::standard(sim.config());

    const rl::RewardMode modes[] = {rl::RewardMode::kNominal, rl::RewardMode::kWorstCorner,
                                    rl::RewardMode::kWeightedCorner};
    for (const Layer& layer : layers) {
        for (rl::RewardMode mode : modes) {
            opc::OpcOptions opt = layer.opt;
            opt.exit_epe_per_feature = 0.0;  // equal budget: no early exit
            opt.exit_epe_per_point = 0.0;
            opt.objective = mode;

            double nominal_epe = 0.0;
            double worst_epe = 0.0;
            double pvb_exact = 0.0;
            double cd_range = 0.0;
            for (const auto& layout : layer.clips) {
                opc::RuleEngine engine({.gain = 0.6, .max_step_nm = 2, .early_exit = false});
                litho::LithoSim run_sim(sim);  // private incremental cache per run
                const auto res = engine.optimize(layout, run_sim, opt);
                // Judge every mode's final mask through the same dense sweep.
                const litho::WindowMetrics judged =
                    sim.evaluate_window(layout, res.final_offsets, spec);
                nominal_epe += judged.nominal_corner()->metrics.sum_abs_epe;
                worst_epe += judged.worst_epe;
                pvb_exact += judged.pv_band_exact_nm2;
                cd_range += judged.cd_range_nm2();
            }
            std::printf("%-8s %-16s %12.1f %12.1f %14.0f %12.0f\n", layer.name,
                        rl::reward_mode_name(mode), nominal_epe, worst_epe, pvb_exact,
                        cd_range);
        }
    }
}

void modulator_exponent_ablation() {
    std::printf("\n=== Ablation C: modulator exponent (peak preference vs EPE) ===\n");
    std::printf("%-6s", "EPE");
    for (int n : {2, 4, 6}) std::printf("   f=0.02x^%d+1", n);
    std::printf("\n");
    for (double epe : {0.5, 1.0, 2.0, 4.0, 8.0}) {
        std::printf("%-6.1f", epe);
        for (int n : {2, 4, 6}) {
            core::ModulatorConfig cfg;
            cfg.n = n;
            const auto p = core::modulation_vector(epe, cfg);
            std::printf("   %12.4f", p[0]);
        }
        std::printf("\n");
    }
}

}  // namespace

int main() {
    set_log_level(LogLevel::kInfo);
    litho::LithoSim sim(core::Experiment::litho_config());
    coordination_ablation(sim);
    kernel_count_ablation();
    reward_mode_ablation(sim);
    modulator_exponent_ablation();
    return 0;
}
